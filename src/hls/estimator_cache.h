/**
 * @file
 * Memoization in front of hls::estimate for the DSE hot path. A design
 * point is identified by a *canonical schedule fingerprint*: a textual
 * serialization of every statement's transformed iteration domain,
 * schedule betas, origin map and per-loop hardware annotations, plus
 * the candidate's array-partition plan, the estimator configuration and
 * a caller-provided digest of the function itself (shapes + bodies +
 * user directives, e.g. driver::renderDsl). Two candidates produced by
 * *different primitive sequences* that land on the same transformed
 * schedule therefore share one estimate, and re-materializing a design
 * (the final DSE point, --replay-journal, a warm bench re-run) skips
 * the estimator entirely.
 *
 * The cache key is a 128-bit streaming FNV-1a digest of the canonical
 * text: the serialization operators write straight into a hashing
 * std::streambuf (support/fnv_stream.h), so the hot path never
 * materializes the multi-KB canonical string. The textual form is
 * still available (designFingerprintText(), or globally via
 * setFingerprintDebugDump()) for auditing what was hashed. The cache
 * is process-wide and thread-safe; the DSE engine feeds it from its
 * worker pool. Reports are small (a few hundred bytes); an optional
 * FIFO capacity (setCapacity(), `pomd --estimator-cache-cap`) bounds
 * long-lived daemons, and clear() exists for cold-run benchmarks.
 *
 * Persistence (`pomc --cache-dir`, the pomd daemon's warm-start): the
 * cache spills to a content-addressed directory --
 *
 *   <dir>/index            list of entry hashes (atomic rewrite)
 *   <dir>/objects/<hash>   one entry: full key + serialized report
 *
 * where <hash> is the FNV-1a-64 of the canonical fingerprint. Every
 * file is stamped with support::kCacheFormatName and kVersionString
 * (a mismatch is a clean load error, never misread bytes), carries its
 * own checksum (a corrupt entry is skipped with a warning, the rest
 * still load), stores the *full* key so a hash collision can never
 * alias two schedules, and is written to a temp name + rename()d so a
 * crash mid-save leaves no torn files.
 */

#ifndef POM_HLS_ESTIMATOR_CACHE_H
#define POM_HLS_ESTIMATOR_CACHE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>

#include "hls/estimator.h"

namespace pom::hls {

/**
 * Write one statement's canonical schedule text (name, domain, betas,
 * origin map, hardware annotations) to @p os. The unit of every
 * fingerprint below; also what the DSE's per-unit memo stores so a
 * whole-design digest can be rebuilt from unchanged fragments.
 */
void scheduleFingerprintTo(std::ostream &os,
                           const transform::PolyStmt &stmt);

/** One statement's canonical schedule text as a string. */
std::string stmtScheduleFragment(const transform::PolyStmt &stmt);

/**
 * Canonical text of the transformed schedules: per statement the name,
 * domain, betas, origin map and hardware annotations, in statement
 * order. This is the schedule part of a design-point fingerprint; it is
 * also a useful debugging dump on its own.
 */
std::string
scheduleFingerprint(const std::vector<transform::PolyStmt> &stmts);

/** Write the canonical "costs ..." line of @p costs to @p os. */
void opCostsFingerprintTo(std::ostream &os, const OpCosts &costs);

/**
 * Full design-point fingerprint: a 128-bit digest (32 hex chars) over
 * the canonical text formed by @p funcDigest (any canonical rendering
 * of the function, stable across candidates of one search), the
 * schedule fingerprint of @p stmts, the partition plan and the
 * estimator options (device, sharing mode, operator costs). Streams
 * into the hash -- no canonical string is materialized. Records a
 * `dse.fingerprint_ms` histogram sample when metrics are enabled and
 * dumps the canonical text at Debug level when
 * setFingerprintDebugDump(true) is active.
 */
std::string
designFingerprint(const std::string &funcDigest,
                  const std::vector<transform::PolyStmt> &stmts,
                  const PartitionPlan &plan,
                  const EstimatorOptions &options);

/**
 * Same digest as designFingerprint(), but the per-statement schedule
 * text comes from precomputed fragments (stmtScheduleFragment()) in
 * statement order. The DSE's incremental path uses this to rebuild a
 * whole-design key from memoized per-unit fragments; byte-equal input
 * text guarantees the digests match the monolithic builder's.
 */
std::string designFingerprintFragments(
    const std::string &funcDigest,
    const std::vector<const std::string *> &stmtFragments,
    const PartitionPlan &plan, const EstimatorOptions &options);

/**
 * The full canonical design-point text (what designFingerprint()
 * hashes), for debugging and the differential tests.
 */
std::string
designFingerprintText(const std::string &funcDigest,
                      const std::vector<transform::PolyStmt> &stmts,
                      const PartitionPlan &plan,
                      const EstimatorOptions &options);

/**
 * When enabled, every designFingerprint() call also renders the
 * canonical text and emits it as a Debug diagnostic (visible with -v).
 * Costs what the streaming path saves; off by default.
 */
void setFingerprintDebugDump(bool enabled);
bool fingerprintDebugDump();

/** Content address of one cache entry: FNV-1a-64 of @p key, 16 hex. */
std::string cacheEntryHash(const std::string &key);

/**
 * Serialize one (key, report) pair as the on-disk entry format:
 * version-stamped header, length-prefixed key, every SynthesisReport
 * field (doubles in hexfloat, so the round-trip is bit-exact), and a
 * trailing checksum line.
 */
std::string encodeCacheEntry(const std::string &key,
                             const SynthesisReport &report);

/**
 * Parse an entry produced by encodeCacheEntry(). Returns false with a
 * diagnostic in @p error on a version/format mismatch, a checksum
 * failure, or any malformed field; @p key and @p report are only valid
 * on success.
 */
bool decodeCacheEntry(const std::string &text, std::string &key,
                      SynthesisReport &report, std::string &error);

/** Outcome counts of one loadDir()/saveDir() call. */
struct SpillStats
{
    std::size_t loaded = 0;  ///< entries read into the cache
    std::size_t skipped = 0; ///< corrupt/missing entries warned about
    std::size_t written = 0; ///< new object files created
    std::size_t kept = 0;    ///< entries already present on disk
};

/** Thread-safe fingerprint -> SynthesisReport map with hit statistics. */
class EstimatorCache
{
  public:
    /** Cached report for @p key; counts a hit/miss either way. */
    std::optional<SynthesisReport> lookup(const std::string &key);

    /** Insert (first writer wins; concurrent duplicates are idempotent). */
    void store(const std::string &key, const SynthesisReport &report);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    std::size_t size() const;

    /**
     * FIFO entry cap (0 = unbounded, the default). When a store pushes
     * the cache past the cap, the oldest inserted entries are evicted
     * (counted in evictions() and the `dse.cache.evictions` counter).
     * Mirrors pass::PipelineCache's policy; used by long-lived daemons
     * via `pomd --estimator-cache-cap`.
     */
    std::size_t capacity() const;
    void setCapacity(std::size_t capacity);

    /** Drop all entries and reset the statistics (cold-run benchmarks). */
    void clear();

    /** Copy of all entries (spilling, tests). */
    std::vector<std::pair<std::string, SynthesisReport>> snapshot() const;

    /**
     * Load a cache directory written by saveDir(). A missing directory
     * or index is a cold start (true, zero stats); an index with the
     * wrong format/version is a clean error (false + @p error).
     * Individual corrupt or missing entries are skipped with a warning
     * and counted in stats.skipped. Loaded entries go through store(),
     * so in-memory values win over disk duplicates. Does not touch the
     * hit/miss statistics.
     */
    bool loadDir(const std::string &dir, SpillStats &stats,
                 std::string &error);

    /**
     * Spill every entry to @p dir (creating it), content-addressed by
     * cacheEntryHash(). Object files and the index are written to temp
     * names and rename()d into place; entries already on disk are left
     * untouched, and hashes found in an existing index are preserved,
     * so concurrent savers merge instead of clobbering each other.
     */
    bool saveDir(const std::string &dir, SpillStats &stats,
                 std::string &error) const;

    /** The process-wide cache the DSE engine uses. */
    static EstimatorCache &global();

  private:
    void evictLocked();

    mutable std::mutex mutex_;
    std::unordered_map<std::string, SynthesisReport> map_;
    std::deque<std::string> order_; ///< insertion order for FIFO eviction
    std::size_t capacity_ = 0;      ///< 0 = unbounded
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace pom::hls

#endif // POM_HLS_ESTIMATOR_CACHE_H
