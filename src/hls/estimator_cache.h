/**
 * @file
 * Memoization in front of hls::estimate for the DSE hot path. A design
 * point is identified by a *canonical schedule fingerprint*: a textual
 * serialization of every statement's transformed iteration domain,
 * schedule betas, origin map and per-loop hardware annotations, plus
 * the candidate's array-partition plan, the estimator configuration and
 * a caller-provided digest of the function itself (shapes + bodies +
 * user directives, e.g. driver::renderDsl). Two candidates produced by
 * *different primitive sequences* that land on the same transformed
 * schedule therefore share one estimate, and re-materializing a design
 * (the final DSE point, --replay-journal, a warm bench re-run) skips
 * the estimator entirely.
 *
 * The full canonical string is the cache key -- no lossy hashing, so a
 * hit can never return the report of a different schedule. The cache is
 * process-wide and thread-safe; the DSE engine feeds it from its worker
 * pool. Reports are small (a few hundred bytes), so an entry per
 * explored point is cheap; clear() exists for benchmarks that need cold
 * runs.
 *
 * Persistence (`pomc --cache-dir`, the pomd daemon's warm-start): the
 * cache spills to a content-addressed directory --
 *
 *   <dir>/index            list of entry hashes (atomic rewrite)
 *   <dir>/objects/<hash>   one entry: full key + serialized report
 *
 * where <hash> is the FNV-1a-64 of the canonical fingerprint. Every
 * file is stamped with support::kCacheFormatName and kVersionString
 * (a mismatch is a clean load error, never misread bytes), carries its
 * own checksum (a corrupt entry is skipped with a warning, the rest
 * still load), stores the *full* key so a hash collision can never
 * alias two schedules, and is written to a temp name + rename()d so a
 * crash mid-save leaves no torn files.
 */

#ifndef POM_HLS_ESTIMATOR_CACHE_H
#define POM_HLS_ESTIMATOR_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "hls/estimator.h"

namespace pom::hls {

/**
 * Canonical text of the transformed schedules: per statement the name,
 * domain, betas, origin map and hardware annotations, in statement
 * order. This is the schedule part of a design-point fingerprint; it is
 * also a useful debugging dump on its own.
 */
std::string
scheduleFingerprint(const std::vector<transform::PolyStmt> &stmts);

/**
 * Full design-point fingerprint: @p funcDigest (any canonical rendering
 * of the function, stable across candidates of one search), the
 * schedule fingerprint of @p stmts, the partition plan and the
 * estimator options (device, sharing mode, operator costs).
 */
std::string
designFingerprint(const std::string &funcDigest,
                  const std::vector<transform::PolyStmt> &stmts,
                  const PartitionPlan &plan,
                  const EstimatorOptions &options);

/** Content address of one cache entry: FNV-1a-64 of @p key, 16 hex. */
std::string cacheEntryHash(const std::string &key);

/**
 * Serialize one (key, report) pair as the on-disk entry format:
 * version-stamped header, length-prefixed key, every SynthesisReport
 * field (doubles in hexfloat, so the round-trip is bit-exact), and a
 * trailing checksum line.
 */
std::string encodeCacheEntry(const std::string &key,
                             const SynthesisReport &report);

/**
 * Parse an entry produced by encodeCacheEntry(). Returns false with a
 * diagnostic in @p error on a version/format mismatch, a checksum
 * failure, or any malformed field; @p key and @p report are only valid
 * on success.
 */
bool decodeCacheEntry(const std::string &text, std::string &key,
                      SynthesisReport &report, std::string &error);

/** Outcome counts of one loadDir()/saveDir() call. */
struct SpillStats
{
    std::size_t loaded = 0;  ///< entries read into the cache
    std::size_t skipped = 0; ///< corrupt/missing entries warned about
    std::size_t written = 0; ///< new object files created
    std::size_t kept = 0;    ///< entries already present on disk
};

/** Thread-safe fingerprint -> SynthesisReport map with hit statistics. */
class EstimatorCache
{
  public:
    /** Cached report for @p key; counts a hit/miss either way. */
    std::optional<SynthesisReport> lookup(const std::string &key);

    /** Insert (first writer wins; concurrent duplicates are idempotent). */
    void store(const std::string &key, const SynthesisReport &report);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** Drop all entries and reset the statistics (cold-run benchmarks). */
    void clear();

    /** Copy of all entries (spilling, tests). */
    std::vector<std::pair<std::string, SynthesisReport>> snapshot() const;

    /**
     * Load a cache directory written by saveDir(). A missing directory
     * or index is a cold start (true, zero stats); an index with the
     * wrong format/version is a clean error (false + @p error).
     * Individual corrupt or missing entries are skipped with a warning
     * and counted in stats.skipped. Loaded entries go through store(),
     * so in-memory values win over disk duplicates. Does not touch the
     * hit/miss statistics.
     */
    bool loadDir(const std::string &dir, SpillStats &stats,
                 std::string &error);

    /**
     * Spill every entry to @p dir (creating it), content-addressed by
     * cacheEntryHash(). Object files and the index are written to temp
     * names and rename()d into place; entries already on disk are left
     * untouched, and hashes found in an existing index are preserved,
     * so concurrent savers merge instead of clobbering each other.
     */
    bool saveDir(const std::string &dir, SpillStats &stats,
                 std::string &error) const;

    /** The process-wide cache the DSE engine uses. */
    static EstimatorCache &global();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, SynthesisReport> map_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace pom::hls

#endif // POM_HLS_ESTIMATOR_CACHE_H
