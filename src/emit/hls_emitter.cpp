#include "emit/hls_emitter.h"

#include <cctype>
#include <map>
#include <sstream>

#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::emit {

using ir::Attribute;
using ir::Operation;
using ir::Value;
using poly::Bound;
using poly::LinearExpr;

namespace {

class Emitter
{
  public:
    std::string
    run(const Operation &func)
    {
        POM_ASSERT(func.opName() == "func.func", "emitHlsC needs func.func");
        std::ostringstream os;
        emitSignature(func, os);
        os << " {\n";
        emitPartitionPragmas(func, os);
        for (const auto &arg : func.region(0).arguments())
            iv_names_[arg.get()] = arg->name();
        emitBlock(func.region(0), os, 1);
        os << "}\n";
        return os.str();
    }

  private:
    static std::string
    indent(int level)
    {
        return support::repeat("  ", level);
    }

    /** Make a name a valid C identifier (e.g. "2mm" -> "_2mm"). */
    static std::string
    cIdentifier(const std::string &name)
    {
        std::string out = name;
        for (auto &ch : out) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
            out.insert(out.begin(), '_');
        return out;
    }

    void
    emitSignature(const Operation &func, std::ostringstream &os)
    {
        os << "void " << cIdentifier(func.attr(ir::kAttrSymName).asString())
           << "(";
        bool first = true;
        for (const auto &arg : func.region(0).arguments()) {
            if (!first)
                os << ", ";
            first = false;
            const ir::Type &t = arg->type();
            if (t.isMemRef()) {
                os << ir::scalarCName(t.elementKind()) << " "
                   << arg->name();
                for (auto d : t.shape())
                    os << "[" << d << "]";
            } else {
                os << ir::scalarCName(t.elementKind()) << " "
                   << arg->name();
            }
        }
        os << ")";
    }

    void
    emitPartitionPragmas(const Operation &func, std::ostringstream &os)
    {
        for (const auto &[key, value] : func.attrs()) {
            const std::string prefix = "hls.partition.";
            if (key.rfind(prefix, 0) != 0)
                continue;
            std::string array = key.substr(prefix.size());
            std::string kind =
                func.attr("hls.partition_kind." + array).asString();
            const auto &factors = value.asIntVector();
            for (size_t dim = 0; dim < factors.size(); ++dim) {
                if (factors[dim] <= 1)
                    continue;
                os << "#pragma HLS array_partition variable=" << array
                   << " " << kind;
                if (kind != "complete")
                    os << " factor=" << factors[dim];
                os << " dim=" << (dim + 1) << "\n";
            }
        }
    }

    /** Render a bound expression over the enclosing ivs. */
    std::string
    boundExpr(const Bound &b, const std::vector<std::string> &outer,
              bool is_lower) const
    {
        std::vector<std::string> names = outer;
        names.push_back("__self");
        POM_ASSERT(b.expr.numDims() == names.size(),
                   "bound arity mismatch in emitter");
        std::string e = b.expr.str(names);
        if (b.divisor == 1)
            return e;
        // Integer ceil/floor division on non-negative operands.
        if (is_lower) {
            return "((" + e + " + " + std::to_string(b.divisor - 1) +
                   ") / " + std::to_string(b.divisor) + ")";
        }
        return "((" + e + ") / " + std::to_string(b.divisor) + ")";
    }

    std::string
    combinedBound(const std::vector<Bound> &bounds,
                  const std::vector<std::string> &outer,
                  bool is_lower) const
    {
        POM_ASSERT(!bounds.empty(), "loop without bounds in emitter");
        std::string acc = boundExpr(bounds[0], outer, is_lower);
        for (size_t i = 1; i < bounds.size(); ++i) {
            std::string next = boundExpr(bounds[i], outer, is_lower);
            acc = std::string(is_lower ? "max" : "min") + "(" + acc +
                  ", " + next + ")";
        }
        return acc;
    }

    std::vector<std::string>
    outerNames(const Operation &op, size_t first) const
    {
        std::vector<std::string> names;
        for (size_t i = first; i < op.numOperands(); ++i)
            names.push_back(iv_names_.at(op.operand(i)));
        return names;
    }

    void
    emitBlock(const ir::Block &block, std::ostringstream &os, int level)
    {
        for (const auto &op : block.operations())
            emitOp(*op, os, level);
    }

    void
    emitOp(const Operation &op, std::ostringstream &os, int level)
    {
        const std::string &name = op.opName();
        if (name == "affine.for") {
            std::string iv = op.attr(ir::kAttrIterName).asString();
            iv_names_[op.region(0).argument(0)] = iv;
            auto outer = outerNames(op, 0);
            const auto &lower = op.attr(ir::kAttrLowerBounds).asBounds();
            const auto &upper = op.attr(ir::kAttrUpperBounds).asBounds();
            os << indent(level) << "for (int " << iv << " = "
               << combinedBound(lower.lower, outer, true) << "; " << iv
               << " <= " << combinedBound(upper.upper, outer, false)
               << "; ++" << iv << ") {\n";
            if (op.hasAttr(ir::kAttrPipelineII)) {
                os << indent(level) << "#pragma HLS pipeline II="
                   << op.attr(ir::kAttrPipelineII).asInt() << "\n";
            }
            if (op.hasAttr(ir::kAttrUnroll)) {
                std::int64_t factor = op.attr(ir::kAttrUnroll).asInt();
                os << indent(level) << "#pragma HLS unroll";
                if (factor > 1)
                    os << " factor=" << factor;
                os << "\n";
            }
            if (op.hasAttr(ir::kAttrDependenceFree)) {
                std::string names =
                    op.attr(ir::kAttrDependenceFree).asString();
                size_t start = 0;
                while (start < names.size()) {
                    size_t comma = names.find(',', start);
                    if (comma == std::string::npos)
                        comma = names.size();
                    os << indent(level)
                       << "#pragma HLS dependence variable="
                       << names.substr(start, comma - start)
                       << " inter false\n";
                    start = comma + 1;
                }
            }
            emitBlock(op.region(0), os, level + 1);
            os << indent(level) << "}\n";
            return;
        }
        if (name == "affine.if") {
            auto ivs = outerNames(op, 0);
            os << indent(level) << "if (";
            const auto &conds = op.attr(ir::kAttrCondition).asConstraints();
            for (size_t i = 0; i < conds.size(); ++i) {
                if (i)
                    os << " && ";
                os << "(" << conds[i].expr.str(ivs)
                   << (conds[i].isEq ? " == 0" : " >= 0") << ")";
            }
            os << ") {\n";
            emitBlock(op.region(0), os, level + 1);
            os << indent(level) << "}\n";
            return;
        }
        if (name == "affine.load") {
            exprs_[op.result(0)] = subscript(op, 1, op.operand(0)->name());
            return;
        }
        if (name == "affine.store") {
            os << indent(level) << subscript(op, 2, op.operand(1)->name())
               << " = " << exprs_.at(op.operand(0)) << ";\n";
            return;
        }
        if (name == "arith.constant") {
            double v = op.attr(ir::kAttrValue).asFloat();
            std::ostringstream lit;
            lit << v;
            std::string s = lit.str();
            if (op.result(0)->type().isFloatScalar() &&
                s.find('.') == std::string::npos &&
                s.find('e') == std::string::npos) {
                s += ".0";
            }
            exprs_[op.result(0)] = s;
            return;
        }
        if (op.numOperands() == 2 && op.numResults() == 1) {
            std::string a = exprs_.at(op.operand(0));
            std::string b = exprs_.at(op.operand(1));
            std::string text;
            if (name == "arith.addf" || name == "arith.addi")
                text = "(" + a + " + " + b + ")";
            else if (name == "arith.subf" || name == "arith.subi")
                text = "(" + a + " - " + b + ")";
            else if (name == "arith.mulf" || name == "arith.muli")
                text = "(" + a + " * " + b + ")";
            else if (name == "arith.divf")
                text = "(" + a + " / " + b + ")";
            else if (name == "arith.maxf")
                text = "fmax(" + a + ", " + b + ")";
            else if (name == "arith.minf")
                text = "fmin(" + a + ", " + b + ")";
            else
                POM_ASSERT(false, "emitter: unknown binary op ", name);
            exprs_[op.result(0)] = text;
            return;
        }
        if (op.numOperands() == 1 && op.numResults() == 1) {
            std::string a = exprs_.at(op.operand(0));
            if (name == "arith.negf")
                exprs_[op.result(0)] = "(-" + a + ")";
            else if (name == "math.sqrt")
                exprs_[op.result(0)] = "sqrtf(" + a + ")";
            else if (name == "math.exp")
                exprs_[op.result(0)] = "expf(" + a + ")";
            else
                POM_ASSERT(false, "emitter: unknown unary op ", name);
            return;
        }
        POM_ASSERT(false, "emitter: unknown op ", name);
    }

    std::string
    subscript(const Operation &op, size_t first_iv,
              const std::string &array) const
    {
        const poly::AffineMap &map = op.attr(ir::kAttrAccessMap).asMap();
        std::vector<std::string> ivs;
        for (size_t i = first_iv; i < op.numOperands(); ++i)
            ivs.push_back(iv_names_.at(op.operand(i)));
        std::string out = array;
        for (size_t r = 0; r < map.numResults(); ++r)
            out += "[" + map.result(r).str(ivs) + "]";
        return out;
    }

    std::map<const Value *, std::string> iv_names_;
    std::map<const Value *, std::string> exprs_;
};

} // namespace

std::string
emitHlsC(const ir::Operation &func)
{
    obs::Span span("emit.hls-c", "emit");
    Emitter emitter;
    std::string code = emitter.run(func);
    span.arg("chars", static_cast<std::int64_t>(code.size()));
    if (obs::metricsEnabled()) {
        obs::counterAdd("emit.functions");
        std::int64_t lines = 0;
        for (char c : code)
            lines += c == '\n';
        obs::counterAdd("emit.lines", lines);
    }
    return code;
}

} // namespace pom::emit
