/**
 * @file
 * Synthesizable HLS C emission from the annotated affine dialect (paper
 * §V.C back-end): loops become C for-loops, HLS attributes become
 * #pragma HLS directives (pipeline, unroll, array_partition), and
 * affine access maps become array subscripts.
 */

#ifndef POM_EMIT_HLS_EMITTER_H
#define POM_EMIT_HLS_EMITTER_H

#include <string>

#include "ir/operation.h"

namespace pom::emit {

/** Emit HLS C for a func.func of the annotated affine dialect. */
std::string emitHlsC(const ir::Operation &func);

} // namespace pom::emit

#endif // POM_EMIT_HLS_EMITTER_H
