#include "driver/compiler.h"

#include <sstream>

#include "emit/hls_emitter.h"
#include "ir/verifier.h"
#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::driver {

CompileResult
compile(dsl::Function &func, const CompileOptions &options)
{
    obs::Span span("driver.compile", "driver");
    span.arg("function", func.name());
    support::diag(support::DiagLevel::Debug,
                  "compiling function '" + func.name() + "'");
    CompileResult result;

    {
        obs::Span baseline_span("driver.baseline", "driver");
        auto base = lower::extractStmts(func);
        lower::applyDirectives(base, /*ordering_only=*/true);
        auto plain = lower::lowerStmts(func, std::move(base));
        hls::EstimatorOptions eo;
        eo.device = options.dseOptions.device;
        eo.sharing = options.dseOptions.sharing;
        result.baseline = hls::estimate(func, plain, eo);
    }

    if (options.autoDse || func.autoDSERequested()) {
        obs::Span dse_span("driver.dse", "driver");
        dse::DseResult dres = dse::autoDSE(func, options.dseOptions);
        result.design = std::move(dres.design);
        result.report = std::move(dres.report);
        result.dseSeconds = dres.dseSeconds;
    } else {
        obs::Span lower_span("driver.lower", "driver");
        result.design = lower::lower(func);
        hls::EstimatorOptions eo;
        eo.device = options.dseOptions.device;
        eo.sharing = options.dseOptions.sharing;
        result.report = hls::estimate(func, result.design, eo);
    }

    {
        obs::Span verify_span("driver.verify-ir", "driver");
        auto errors = ir::verify(*result.design.func);
        if (!errors.empty()) {
            support::fatal("generated IR failed verification: " +
                           errors[0]);
        }
    }
    result.hlsCode = emit::emitHlsC(*result.design.func);
    return result;
}

namespace {

std::string
scalarDslName(dsl::ScalarKind kind)
{
    using K = dsl::ScalarKind;
    switch (kind) {
      case K::I8: return "p_int8";
      case K::I16: return "p_int16";
      case K::I32: return "p_int32";
      case K::I64: return "p_int64";
      case K::U8: return "p_uint8";
      case K::U16: return "p_uint16";
      case K::U32: return "p_uint32";
      case K::U64: return "p_uint64";
      case K::F32: return "p_float32";
      case K::F64: return "p_float64";
      case K::Index: return "p_index";
    }
    return "?";
}

void
renderDirective(const dsl::Compute &c, const dsl::Directive &d,
                std::ostringstream &os)
{
    using K = dsl::Directive::Kind;
    os << c.name() << ".";
    switch (d.kind) {
      case K::Interchange:
        os << "interchange(" << d.vars[0] << ", " << d.vars[1] << ");";
        break;
      case K::Split:
        os << "split(" << d.vars[0] << ", " << d.factors[0] << ", "
           << d.newVars[0] << ", " << d.newVars[1] << ");";
        break;
      case K::Tile:
        os << "tile(" << d.vars[0] << ", " << d.vars[1] << ", "
           << d.factors[0] << ", " << d.factors[1] << ", " << d.newVars[0]
           << ", " << d.newVars[1] << ", " << d.newVars[2] << ", "
           << d.newVars[3] << ");";
        break;
      case K::Skew:
        os << "skew(" << d.vars[0] << ", " << d.vars[1] << ", "
           << d.factors[0] << ", " << d.newVars[0] << ", " << d.newVars[1]
           << ");";
        break;
      case K::After:
        os << "after(" << d.other->name();
        if (!d.vars.empty())
            os << ", " << d.vars[0];
        os << ");";
        break;
      case K::Fuse:
        os << "fuse(" << d.other->name() << ");";
        break;
      case K::Pipeline:
        os << "pipeline(" << d.vars[0] << ", " << d.factors[0] << ");";
        break;
      case K::Unroll:
        os << "unroll(" << d.vars[0] << ", " << d.factors[0] << ");";
        break;
    }
    os << "\n";
}

} // namespace

std::string
renderDsl(const dsl::Function &func)
{
    std::ostringstream os;
    os << "Function f(\"" << func.name() << "\");\n";

    // Iterators, grouped one declaration line per compute (Fig. 4 L2).
    std::vector<std::string> seen;
    for (const dsl::Compute *c : func.computes()) {
        std::vector<std::string> decls;
        for (const auto &v : c->iters()) {
            bool dup = false;
            for (const auto &s : seen)
                dup |= s == v.name();
            if (dup)
                continue;
            seen.push_back(v.name());
            decls.push_back(v.name() + "(\"" + v.name() + "\", " +
                            std::to_string(v.lo()) + ", " +
                            std::to_string(v.hi()) + ")");
        }
        if (!decls.empty())
            os << "var " << support::join(decls, ", ") << ";\n";
    }

    for (const dsl::Placeholder *p : func.placeholders()) {
        os << "placeholder " << p->name() << "(\"" << p->name() << "\", {"
           << support::joinMapped(p->shape(), ", ",
                  [](std::int64_t d) { return std::to_string(d); })
           << "}, " << scalarDslName(p->elementType()) << ");\n";
    }

    for (const dsl::Compute *c : func.computes()) {
        os << "compute " << c->name() << "(\"" << c->name() << "\", {"
           << support::joinMapped(c->iters(), ", ",
                  [](const dsl::Var &v) { return v.name(); })
           << "}, " << c->rhs().str() << ", " << c->dest().str() << ");\n";
    }

    for (const dsl::Compute *c : func.computes()) {
        for (const auto &d : c->directives())
            renderDirective(*c, d, os);
    }

    for (const dsl::Placeholder *p : func.placeholders()) {
        if (p->partitionFactors().empty())
            continue;
        os << p->name() << ".partition({"
           << support::joinMapped(p->partitionFactors(), ", ",
                  [](std::int64_t f) { return std::to_string(f); })
           << "}, \"" << p->partitionKind() << "\");\n";
    }

    if (func.autoDSERequested())
        os << "f.auto_DSE();\n";
    os << "codegen();\n";
    return os.str();
}

} // namespace pom::driver
