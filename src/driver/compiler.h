/**
 * @file
 * The end-to-end POM driver: the `codegen()` entry of the paper's DSL
 * (Fig. 4 line 9). Compiles a DSL function through all three IR layers
 * into synthesizable HLS C, optionally running the two-stage DSE first
 * (the f.auto_DSE() primitive), and returns the synthesis report from
 * the virtual-Vitis estimator.
 */

#ifndef POM_DRIVER_COMPILER_H
#define POM_DRIVER_COMPILER_H

#include <string>

#include "dse/dse.h"
#include "dsl/dsl.h"
#include "hls/estimator.h"
#include "lower/lower.h"

namespace pom::driver {

/** Compilation options. */
struct CompileOptions
{
    /**
     * Run automatic DSE (overrides to true when the function called
     * autoDSE()). When false, only user-specified scheduling primitives
     * are applied.
     */
    bool autoDse = false;

    dse::DseOptions dseOptions;
};

/** End-to-end compilation result. */
struct CompileResult
{
    /** Synthesizable HLS C code. */
    std::string hlsCode;

    /** The annotated affine dialect and polyhedral state. */
    lower::LoweredFunction design;

    /** Virtual-Vitis synthesis report for the design. */
    hls::SynthesisReport report;

    /** Report of the unoptimized program (speedup denominator). */
    hls::SynthesisReport baseline;

    /** DSE wall-clock (0 when DSE was not run). */
    double dseSeconds = 0.0;
};

/** Compile a DSL function to HLS C (paper: codegen()). */
CompileResult compile(dsl::Function &func,
                      const CompileOptions &options = {});

/**
 * Render a function back to canonical POM DSL source (used for the
 * lines-of-code comparison of Fig. 15).
 */
std::string renderDsl(const dsl::Function &func);

} // namespace pom::driver

#endif // POM_DRIVER_COMPILER_H
