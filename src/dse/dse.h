/**
 * @file
 * POM's two-stage design space exploration engine (paper §VI).
 *
 * Stage 1 -- dependence-aware code transformation: iterate over the
 * dependence graph, relieving tight loop-carried dependences with
 * interchange and skewing; conflicting strategies inside a fused loop
 * nest are resolved by splitting the nest, transforming each statement,
 * and conservatively re-fusing (the Fig. 10 split-interchange-merge).
 *
 * Stage 2 -- bottleneck-oriented code optimization: estimate the latency
 * of every node, order data paths by latency, and repeatedly double the
 * parallelism (tiling + unrolling + array partitioning + pipelining) of
 * the bottleneck node until it hits maximum parallelism or the resource
 * budget; nodes leave the optimization list through the exit mechanism
 * and the search ends when the list is empty.
 */

#ifndef POM_DSE_DSE_H
#define POM_DSE_DSE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsl/dsl.h"
#include "hls/estimator.h"
#include "lower/lower.h"
#include "obs/journal.h"
#include "dse/pareto.h"
#include "dse/strategy.h"

namespace pom::dse {

/** DSE configuration. */
struct DseOptions
{
    hls::Device device = hls::Device::xc7z020();

    /** Fraction of the device budget available (Fig. 11 sweeps this). */
    double resourceFraction = 1.0;

    /** Stage-1 iteration bound (paper: "pre-defined bounds"). */
    int maxStage1Iterations = 6;

    /** Upper bound on a single node's parallelism degree. */
    std::int64_t maxParallelism = 64;

    /** Cap on the unroll factor of the innermost parallel loop. */
    std::int64_t innerUnrollCap = 16;

    /** Hardware sharing model passed to the estimator. */
    hls::SharingMode sharing = hls::SharingMode::Reuse;

    /** Apply user-specified primitives before exploring. */
    bool applyUserDirectives = true;

    /**
     * Run every explored design point through the differential
     * equivalence oracle (check/oracle.h) and abort the search if a
     * transformation ever changes the program's semantics. Costs one
     * pair of interpreter runs per point; meant for tests and debugging
     * at interpreter-friendly sizes. Forces single-threaded, uncached
     * evaluation so every point really is lowered and interpreted.
     */
    bool verifyEachPoint = false;

    /** Buffer fill seed used by verifyEachPoint. */
    unsigned verifySeed = 1;

    /**
     * Speculative evaluation width for stage 2: how many candidate
     * design points may be estimated concurrently on the process-wide
     * thread pool (support/thread_pool.h). 0 means support::jobs()
     * (i.e. `pomc --jobs N` / POM_JOBS / hardware concurrency). The
     * search trajectory, the journal and the selected design are
     * bit-identical for every value -- speculation only overlaps the
     * estimator calls the sequential search would have made anyway.
     */
    int jobs = 0;

    /**
     * Memoize synthesis estimates in the process-wide EstimatorCache
     * (hls/estimator_cache.h), keyed by the canonical design
     * fingerprint. Repeated evaluations of the same schedule -- the
     * final materialization, replays, repeated sweeps -- skip both
     * lowering and estimation. Ignored when verifyEachPoint is set.
     */
    bool memoize = true;

    /**
     * Evaluate stage-2 candidates incrementally (`pomc
     * --incremental-estimate`): per-unit NodeReports are memoized in
     * the process-wide hls::NodeReportCache and composed with the pure
     * combiner, so a candidate that differs from its parent in one
     * unit re-lowers/re-estimates only that unit. Reports, journals
     * and the selected design are byte-identical to the monolithic
     * path (differentially tested + CI-gated). Requires memoize; falls
     * back to monolithic evaluation when memoize or the cache is off,
     * or when verifyEachPoint forces real lowering.
     */
    bool incrementalEstimate = true;

    /**
     * Reject candidates whose admissible resource lower bound
     * (hls/bound.h) already exceeds the device budget *without*
     * lowering or estimating them. The bound never exceeds the true
     * estimate, so the full estimator would have rejected every pruned
     * point too: trajectories, verdicts and reasons are unchanged. The
     * journaled resource numbers of pruned points are the bound's
     * rather than the estimator's, which is why this is off by default
     * (the byte-compared goldens record estimator numbers); `pomc
     * --dse-prune on` trades that for fewer evaluations.
     */
    bool prune = false;

    /**
     * Which stage-2 search driver explores the design space (`pomc
     * --strategy`). All three maintain the same Pareto frontier and
     * produce byte-identical journals at any worker count; greedy is
     * the paper's bottleneck walk and selects the same final design it
     * always has.
     */
    StrategyKind strategy = StrategyKind::Greedy;

    /** Beam width of StrategyKind::Beam. */
    int beamWidth = 4;

    /** Annealing schedule of StrategyKind::Anneal. */
    int annealRounds = 16;
    int annealBatch = 4;
    unsigned annealSeed = 1;

    /**
     * Evaluation budget for the population strategies (beam/anneal);
     * greedy's walk is self-terminating and ignores it.
     */
    int strategyPointBudget = 192;
};

/** Outcome of a DSE run. */
struct DseResult
{
    /** The selected design, fully lowered and annotated. */
    lower::LoweredFunction design;

    /** Synthesis report of the selected design. */
    hls::SynthesisReport report;

    /** Report of the unoptimized input (speedup baseline). */
    hls::SynthesisReport baseline;

    /** Parallelism degree chosen per statement. */
    std::vector<std::pair<std::string, std::int64_t>> parallelism;

    /** Wall-clock seconds spent searching (the paper's "DSE time"). */
    double dseSeconds = 0.0;

    /** Number of design points evaluated. */
    int pointsExplored = 0;

    /** Design points checked by the oracle (verifyEachPoint). */
    int pointsVerified = 0;

    /** Human-readable search log. */
    std::vector<std::string> log;

    /**
     * Machine-readable search journal: one entry per stage-1 decision,
     * stage-2 bottleneck selection, and explored design point (with
     * primitives, estimated latency/resources and the accept/reject
     * verdict). Always recorded; autoDSE additionally publishes it into
     * the process-wide obs::journal() when obs::journalEnabled().
     */
    std::vector<obs::JournalEntry> journal;

    /**
     * The final Pareto frontier over (latency_cycles, dsp, bram_bits,
     * lut) across every feasible point the search estimated, in
     * canonical order (see dse/pareto.h).
     */
    std::vector<FrontierPoint> frontier;

    /**
     * Per-round frontier snapshots (the pom-dse-journal/v2 "frontier"
     * sections; serialize with obs::journalJsonV2). The last round is
     * always the final frontier.
     */
    std::vector<obs::FrontierRound> frontierRounds;

    /** latency(baseline) / latency(best). */
    double speedup() const;
};

/**
 * Run the two-stage DSE on a DSL function (the f.auto_DSE() primitive).
 * Array partition directives on the function's placeholders are
 * rewritten to match the selected design.
 */
DseResult autoDSE(dsl::Function &func, const DseOptions &options = {});

/** One journaled design point, re-materialized (pomc --replay-journal). */
struct ReplayResult
{
    /** The re-lowered design (feedable to emit::emitHlsC). */
    lower::LoweredFunction design;

    /** Its synthesis report (matches the journaled numbers). */
    hls::SynthesisReport report;

    /** Re-derived primitives summary (equals the journal entry's). */
    std::string primitives;

    /** The journal entry that was replayed. */
    obs::JournalEntry entry;
};

/**
 * Re-materialize design point @p point of a recorded search journal on
 * @p func: re-run the deterministic stage-1 transformation, re-apply
 * the journaled parallelism degrees, lower and estimate. @p func must
 * be the same workload (same statements, sizes and directives) the
 * journal was recorded from -- the re-derived primitives summary is
 * checked against the journal entry and a mismatch is fatal. Partition
 * directives on the function's placeholders are rewritten to match the
 * replayed point.
 */
ReplayResult replayPoint(dsl::Function &func,
                         const std::vector<obs::JournalEntry> &journal,
                         int point, const DseOptions &options = {});

/**
 * Apply the standard parallelism pattern to one statement (Fig. 6):
 * split the free innermost level(s) for @p degree total copies (inner
 * factor capped at @p inner_cap), fully unroll the point loops,
 * pipeline the loop above them, and accumulate cyclic partition factors
 * for the arrays indexed by unrolled iterators into @p partitions.
 * Shared by the POM DSE and the ScaleHLS-like baseline.
 *
 * @param ignore_carried Tile/unroll the innermost levels positionally
 *        without consulting dependence analysis (the ScaleHLS-like
 *        strategy: it unrolls anyway and pays for it in achieved II).
 * @param min_level Levels below this index are left untouched; used for
 *        shared loops of partially fused nests whose statements exchange
 *        data (e.g. the time loop of Jacobi), where restructuring would
 *        violate cross-statement dependences.
 */
void applyParallelSchedule(
    transform::PolyStmt &stmt, std::int64_t degree, std::int64_t inner_cap,
    const dsl::Function &func,
    std::map<std::string, std::vector<std::int64_t>> &partitions,
    size_t min_level = 0, bool ignore_carried = false);

/** Set the accumulated partition plan on the function's placeholders. */
void applyPartitions(
    dsl::Function &func,
    const std::map<std::string, std::vector<std::int64_t>> &partitions);

} // namespace pom::dse

#endif // POM_DSE_DSE_H
