/**
 * @file
 * The pluggable stage-2 search interface. A SearchStrategy owns the
 * search trajectory -- which candidate degree assignments to estimate
 * and in what order -- while the Engine owns everything that must stay
 * byte-deterministic at any worker count: speculative evaluation on the
 * thread pool, consume-in-submission-order merging, point numbering,
 * journaling, and the Pareto frontier.
 *
 * The contract that makes every strategy `POM_JOBS`-invariant by
 * construction:
 *
 *  - plan() returns the next round of steps without knowing how many
 *    workers exist; its content may depend only on what the strategy
 *    observed through consume()/endRound().
 *  - The engine evaluates the round's trial steps speculatively (up to
 *    the worker count in flight) but hands results to consume()
 *    strictly in plan order, one at a time, on the driver thread.
 *  - consume() returns false to abandon the rest of the round (greedy
 *    does this on its first acceptance); abandoned evaluations are
 *    never observed by anyone.
 *
 * Three drivers implement the interface (makeStrategy):
 *
 *  - greedy: the paper's bottleneck walk, bit-identical to the
 *    pre-interface engine (the v1 journal golden pins it).
 *  - beam:   breadth-first beam search keeping the best `beamWidth`
 *    feasible configurations per round; explores a wider frontier.
 *  - anneal: batched simulated annealing with a portable seeded PRNG
 *    (splitmix64) so runs are reproducible across platforms.
 */

#ifndef POM_DSE_STRATEGY_H
#define POM_DSE_STRATEGY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hls/device.h"
#include "hls/estimator.h"
#include "obs/journal.h"

namespace pom::dse {

/** The available stage-2 search drivers. */
enum class StrategyKind
{
    Greedy,
    Beam,
    Anneal,
};

/** Canonical lower-case name of a strategy ("greedy" | ...). */
const char *strategyName(StrategyKind kind);

/** Comma-separated list of valid strategy names (for error messages). */
std::string strategyNames();

/**
 * Parse a strategy name. Returns false on an unknown name -- callers
 * must treat that as a hard error (never fall back to a default).
 */
bool parseStrategy(const std::string &name, StrategyKind &out);

/** One estimated candidate handed to SearchStrategy::consume. */
struct PointEval
{
    hls::SynthesisReport report;
    std::string primitives;
};

/** One planned step of a search round. */
struct StrategyStep
{
    /** Steps without an evaluation (greedy's unit closes) are consumed
     *  in order like any other but receive a null PointEval. */
    bool needsEval = false;

    /** Per-unit parallelism degrees to evaluate (when needsEval). */
    std::vector<std::int64_t> degrees;

    /**
     * Degrees of the already-evaluated configuration this step was
     * derived from (empty when there is none). All three drivers
     * mutate exactly one unit per step, so the engine uses the parent
     * to account node reuse (`dse.delta.*`); correctness never depends
     * on it -- node reports are content-addressed.
     */
    std::vector<std::int64_t> parentDegrees;
};

/** Journal/log sink the engine hands to consume()/endRound(). */
class SearchRecorder
{
  public:
    virtual ~SearchRecorder() = default;

    /** Journal one explored design point (numbered by the engine). */
    virtual void point(const std::string &phase, const PointEval &ev,
                       const std::string &verdict,
                       const std::string &reason) = 0;

    /** Push a raw journal entry (e.g. greedy's bottleneck selection). */
    virtual void event(const obs::JournalEntry &entry) = 0;

    /** Journal a decision and mirror it into the text log. */
    virtual void note(const std::string &kind, const std::string &phase,
                      const std::string &detail) = 0;

    /** Text log only (no journal entry). */
    virtual void log(const std::string &line) = 0;
};

/** Everything a strategy may consult; owned by the engine. */
struct StrategyContext
{
    /** "S0+S1"-style display name per optimization unit. */
    std::vector<std::string> unitNames;

    /** Statement names per unit (for nest-latency attribution). */
    std::vector<std::vector<std::string>> unitMembers;

    /** Trip-count bound on each unit's parallelism degree. */
    std::vector<std::int64_t> maxDegree;

    std::int64_t maxParallelism = 64;

    /** The (resource-fraction-scaled) device budget. */
    hls::Device device;

    /** Beam width of the beam strategy. */
    int beamWidth = 4;

    /** Annealing schedule: rounds and proposals per round. */
    int annealRounds = 16;
    int annealBatch = 4;

    /** PRNG seed of the annealing strategy. */
    unsigned seed = 1;

    /**
     * Upper bound on evaluated points for the population strategies
     * (beam/anneal); greedy ignores it. Keeps deep workloads (the DNN
     * stacks) affordable while the estimator cache absorbs re-visits.
     */
    int pointBudget = 192;

    size_t numUnits() const { return unitNames.size(); }

    /** Latency attributed to @p unit in @p report (bottleneck metric). */
    std::uint64_t unitLatency(const hls::SynthesisReport &report,
                              size_t unit) const;
};

/** A stage-2 search driver. See the file comment for the contract. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    virtual StrategyKind kind() const = 0;

    /** Observe the initial (pipeline-only, all degrees 1) design. */
    virtual void begin(const PointEval &init) = 0;

    /** Plan the next round; empty means the search is finished. */
    virtual std::vector<StrategyStep> plan() = 0;

    /**
     * Observe step @p index of the current plan, with its evaluation
     * when the step required one. Return false to abandon the rest of
     * the round and re-plan.
     */
    virtual bool consume(size_t index, const StrategyStep &step,
                         const PointEval *eval, SearchRecorder &rec) = 0;

    /** Called after every round, consumed fully or abandoned. */
    virtual void endRound(SearchRecorder &rec) { (void)rec; }

    /** The selected per-unit degrees once plan() returned empty. */
    virtual std::vector<std::int64_t> result() const = 0;
};

/** Instantiate one of the three drivers. */
std::unique_ptr<SearchStrategy> makeStrategy(StrategyKind kind,
                                             StrategyContext context);

} // namespace pom::dse

#endif // POM_DSE_STRATEGY_H
