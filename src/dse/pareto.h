/**
 * @file
 * The Pareto frontier the multi-objective DSE maintains over every
 * feasible design point it estimates. Objectives, all minimized:
 *
 *   (latency_cycles, DSP, BRAM bits, LUT)
 *
 * where LUT stands in for the linear power proxy (hls::powerProxyW is
 * monotone in every resource, and LUT is its only term the other
 * objectives do not already cover).
 *
 * Dominance is strict Pareto dominance: a dominates b iff a is no worse
 * in every objective and strictly better in at least one. Points with
 * identical objectives but different primitives are incomparable and
 * may coexist on the frontier. The final set is therefore a pure
 * function of the *set* of inserted points -- insertion order never
 * matters -- which the property suite (tests/dse_frontier_test.cpp)
 * checks over randomized insertion sequences.
 */

#ifndef POM_DSE_PARETO_H
#define POM_DSE_PARETO_H

#include <cstddef>
#include <vector>

#include "obs/journal.h"

namespace pom::dse {

/** A frontier member (journal point id + primitives + objectives). */
using FrontierPoint = obs::FrontierPoint;

/** True iff @p a strictly Pareto-dominates @p b. */
bool dominates(const FrontierPoint &a, const FrontierPoint &b);

/**
 * A Pareto frontier with dominance insertion/pruning. Members are kept
 * in a canonical order (objectives lexicographically, then primitives)
 * so two frontiers holding the same set compare and serialize
 * identically regardless of how they were built.
 */
class ParetoFrontier
{
  public:
    /** What insert() did with the offered point. */
    enum class Insert
    {
        Added,     ///< joined the frontier (dominated members pruned)
        Dominated, ///< strictly dominated by a member; no-op
        Duplicate, ///< already present (same objectives + primitives)
    };

    Insert insert(const FrontierPoint &p);

    /** Members in canonical order. */
    const std::vector<FrontierPoint> &points() const { return points_; }

    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }
    void clear() { points_.clear(); }

  private:
    std::vector<FrontierPoint> points_;
};

} // namespace pom::dse

#endif // POM_DSE_PARETO_H
