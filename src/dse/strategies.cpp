#include "dse/strategy.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

namespace pom::dse {

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::Greedy: return "greedy";
      case StrategyKind::Beam: return "beam";
      case StrategyKind::Anneal: return "anneal";
    }
    return "greedy";
}

std::string
strategyNames()
{
    return "greedy, beam, anneal";
}

bool
parseStrategy(const std::string &name, StrategyKind &out)
{
    if (name == "greedy") {
        out = StrategyKind::Greedy;
        return true;
    }
    if (name == "beam") {
        out = StrategyKind::Beam;
        return true;
    }
    if (name == "anneal") {
        out = StrategyKind::Anneal;
        return true;
    }
    return false;
}

std::uint64_t
StrategyContext::unitLatency(const hls::SynthesisReport &report,
                             size_t unit) const
{
    std::uint64_t lat = 0;
    for (const std::string &name : unitMembers[unit]) {
        for (const auto &[nest, cycles] : report.nestLatencies) {
            if (nest == name)
                lat = std::max(lat, cycles);
        }
    }
    return lat;
}

namespace {

/** The paper's bottleneck walk, byte-identical to the pre-interface
 *  engine: visit open units in (latency desc, index asc) order, close
 *  at max parallelism, otherwise trial a doubled degree whose
 *  rejection also closes the unit; the first acceptance abandons the
 *  round and re-plans from the new incumbent. */
class GreedyStrategy final : public SearchStrategy
{
  public:
    explicit GreedyStrategy(StrategyContext ctx) : ctx_(std::move(ctx))
    {
        degrees_.assign(ctx_.numUnits(), 1);
        open_.assign(ctx_.numUnits(), true);
    }

    StrategyKind kind() const override { return StrategyKind::Greedy; }

    void
    begin(const PointEval &init) override
    {
        best_ = init;
    }

    std::vector<StrategyStep>
    plan() override
    {
        meta_.clear();
        for (size_t ui = 0; ui < ctx_.numUnits(); ++ui) {
            if (!open_[ui])
                continue;
            Meta m;
            m.unit = ui;
            m.latency = ctx_.unitLatency(best_.report, ui);
            meta_.push_back(m);
        }
        std::stable_sort(meta_.begin(), meta_.end(),
                         [](const Meta &a, const Meta &b) {
                             return a.latency > b.latency;
                         });
        std::vector<StrategyStep> steps;
        for (Meta &m : meta_) {
            m.next = degrees_[m.unit] * 2;
            m.close = m.next > ctx_.maxParallelism ||
                      m.next > ctx_.maxDegree[m.unit];
            StrategyStep s;
            if (!m.close) {
                s.needsEval = true;
                s.degrees = degrees_;
                s.degrees[m.unit] = m.next;
                s.parentDegrees = degrees_;
            }
            steps.push_back(std::move(s));
        }
        return steps;
    }

    bool
    consume(size_t index, const StrategyStep &step, const PointEval *eval,
            SearchRecorder &rec) override
    {
        (void)step;
        const Meta &m = meta_[index];
        {
            obs::JournalEntry e;
            e.kind = "bottleneck";
            e.phase = "stage2";
            e.detail = "selected " + ctx_.unitNames[m.unit] +
                       " as bottleneck";
            e.latencyCycles = m.latency;
            e.verdict = "info";
            e.reason = "largest nest latency among open units";
            rec.event(e);
        }
        if (m.close) {
            open_[m.unit] = false; // exit mechanism: max parallelism
            rec.note("bottleneck", "stage2",
                     "stage2: unit reached max parallelism, removed");
            return true;
        }
        if (!eval->report.resources.fitsIn(ctx_.device)) {
            rec.point("stage2", *eval, "rejected",
                      "exceeds resource budget");
            open_[m.unit] = false; // exit mechanism: resource bound
            rec.log("stage2: unit exceeds resource budget, removed");
            return true;
        }
        if (eval->report.latencyCycles >= best_.report.latencyCycles) {
            rec.point("stage2", *eval, "rejected",
                      "no latency improvement");
            open_[m.unit] = false;
            rec.log("stage2: no latency improvement, removed");
            return true;
        }
        degrees_[m.unit] = m.next;
        best_ = *eval;
        rec.point("stage2", best_, "accepted", "latency improved");
        rec.log("stage2: parallelism " + std::to_string(m.next) + " -> " +
                best_.report.str(ctx_.device));
        return false; // abandon the round; re-plan from the new best
    }

    std::vector<std::int64_t>
    result() const override
    {
        return degrees_;
    }

  private:
    struct Meta
    {
        size_t unit = 0;
        std::uint64_t latency = 0;
        std::int64_t next = 0;
        bool close = false;
    };

    StrategyContext ctx_;
    std::vector<std::int64_t> degrees_;
    std::vector<bool> open_;
    std::vector<Meta> meta_;
    PointEval best_;
};

/** Joined degree key for visited-set dedup ("1,4,2"). */
std::string
configKey(const std::vector<std::int64_t> &degrees)
{
    std::string key;
    for (std::int64_t d : degrees) {
        key += key.empty() ? "" : ",";
        key += std::to_string(d);
    }
    return key;
}

/** Breadth-first beam search: every round expands each beam member by
 *  doubling one unit's degree, evaluates the deduplicated successor
 *  set, and keeps the `beamWidth` feasible candidates with the lowest
 *  latency (ties broken by primitives, so the beam is independent of
 *  evaluation order). */
class BeamStrategy final : public SearchStrategy
{
  public:
    explicit BeamStrategy(StrategyContext ctx) : ctx_(std::move(ctx)) {}

    StrategyKind kind() const override { return StrategyKind::Beam; }

    void
    begin(const PointEval &init) override
    {
        std::vector<std::int64_t> ones(ctx_.numUnits(), 1);
        visited_.insert(configKey(ones));
        beam_.push_back(ones);
        best_ = ones;
        if (init.report.resources.fitsIn(ctx_.device)) {
            bestLatency_ = init.report.latencyCycles;
            bestFeasible_ = true;
        }
    }

    std::vector<StrategyStep>
    plan() override
    {
        std::vector<StrategyStep> steps;
        if (consumed_ >= ctx_.pointBudget)
            return steps;
        candidates_.clear();
        for (const auto &member : beam_) {
            for (size_t u = 0; u < ctx_.numUnits(); ++u) {
                std::int64_t next = member[u] * 2;
                if (next > ctx_.maxParallelism ||
                    next > ctx_.maxDegree[u]) {
                    continue;
                }
                std::vector<std::int64_t> cfg = member;
                cfg[u] = next;
                if (!visited_.insert(configKey(cfg)).second)
                    continue;
                StrategyStep s;
                s.needsEval = true;
                s.degrees = std::move(cfg);
                s.parentDegrees = member;
                steps.push_back(std::move(s));
                if (consumed_ + static_cast<int>(steps.size()) >=
                    ctx_.pointBudget) {
                    return steps;
                }
            }
        }
        return steps;
    }

    bool
    consume(size_t index, const StrategyStep &step, const PointEval *eval,
            SearchRecorder &rec) override
    {
        (void)index;
        ++consumed_;
        if (!eval->report.resources.fitsIn(ctx_.device)) {
            rec.point("stage2", *eval, "rejected",
                      "exceeds resource budget");
            return true;
        }
        rec.point("stage2", *eval, "accepted", "feasible beam candidate");
        candidates_.push_back(
            {eval->report.latencyCycles, eval->primitives, step.degrees});
        if (!bestFeasible_ || eval->report.latencyCycles < bestLatency_) {
            bestFeasible_ = true;
            bestLatency_ = eval->report.latencyCycles;
            best_ = step.degrees;
        }
        return true;
    }

    void
    endRound(SearchRecorder &rec) override
    {
        size_t feasible = candidates_.size();
        std::stable_sort(candidates_.begin(), candidates_.end(),
                         [](const Candidate &a, const Candidate &b) {
                             return std::tie(a.latency, a.primitives) <
                                    std::tie(b.latency, b.primitives);
                         });
        if (candidates_.size() >
            static_cast<size_t>(ctx_.beamWidth)) {
            candidates_.resize(static_cast<size_t>(ctx_.beamWidth));
        }
        beam_.clear();
        for (auto &c : candidates_)
            beam_.push_back(std::move(c.degrees));
        rec.note("strategy", "stage2",
                 "beam: kept " + std::to_string(beam_.size()) + " of " +
                     std::to_string(feasible) +
                     " feasible candidates");
        candidates_.clear();
    }

    std::vector<std::int64_t>
    result() const override
    {
        return best_;
    }

  private:
    struct Candidate
    {
        std::uint64_t latency = 0;
        std::string primitives;
        std::vector<std::int64_t> degrees;
    };

    StrategyContext ctx_;
    std::vector<std::vector<std::int64_t>> beam_;
    std::set<std::string> visited_;
    std::vector<Candidate> candidates_;
    std::vector<std::int64_t> best_;
    std::uint64_t bestLatency_ = 0;
    bool bestFeasible_ = false;
    int consumed_ = 0;
};

/** splitmix64: tiny, portable, and identical on every platform --
 *  std::uniform_*_distribution is implementation-defined and would
 *  break cross-platform journal reproducibility. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextUnit()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

/** Batched simulated annealing: each round proposes `annealBatch`
 *  neighbors of the current configuration (double or halve one unit's
 *  degree), then applies Metropolis acceptance to each in consume
 *  order. All randomness is drawn on the driver thread in plan/consume
 *  order, so the trajectory is independent of the worker count. */
class AnnealingStrategy final : public SearchStrategy
{
  public:
    explicit AnnealingStrategy(StrategyContext ctx)
        : ctx_(std::move(ctx)), rng_(ctx_.seed)
    {}

    StrategyKind kind() const override { return StrategyKind::Anneal; }

    void
    begin(const PointEval &init) override
    {
        current_.assign(ctx_.numUnits(), 1);
        best_ = current_;
        if (init.report.resources.fitsIn(ctx_.device)) {
            currentLatency_ = init.report.latencyCycles;
            bestLatency_ = currentLatency_;
            feasible_ = true;
        }
        temperature_ =
            std::max<double>(1.0,
                             static_cast<double>(
                                 init.report.latencyCycles) *
                                 0.25);
    }

    std::vector<StrategyStep>
    plan() override
    {
        std::vector<StrategyStep> steps;
        if (round_ >= ctx_.annealRounds ||
            consumed_ >= ctx_.pointBudget) {
            return steps;
        }
        for (int b = 0; b < ctx_.annealBatch; ++b) {
            size_t u = static_cast<size_t>(rng_.next() %
                                           ctx_.numUnits());
            bool up = (rng_.next() & 1) != 0;
            std::vector<std::int64_t> cfg = current_;
            std::int64_t doubled = cfg[u] * 2;
            bool can_double = doubled <= ctx_.maxParallelism &&
                              doubled <= ctx_.maxDegree[u];
            bool can_halve = cfg[u] > 1;
            if (up && can_double) {
                cfg[u] = doubled;
            } else if (!up && can_halve) {
                cfg[u] = cfg[u] / 2;
            } else if (can_double) {
                cfg[u] = doubled;
            } else if (can_halve) {
                cfg[u] = cfg[u] / 2;
            } else {
                continue; // degree pinned at 1; nothing to propose
            }
            StrategyStep s;
            s.needsEval = true;
            s.degrees = std::move(cfg);
            s.parentDegrees = current_;
            steps.push_back(std::move(s));
            if (consumed_ + static_cast<int>(steps.size()) >=
                ctx_.pointBudget) {
                break;
            }
        }
        // A fully pinned design space (every unit at max degree 1)
        // produces no proposals; terminate instead of spinning.
        if (steps.empty())
            round_ = ctx_.annealRounds;
        return steps;
    }

    bool
    consume(size_t index, const StrategyStep &step, const PointEval *eval,
            SearchRecorder &rec) override
    {
        (void)index;
        ++consumed_;
        if (!eval->report.resources.fitsIn(ctx_.device)) {
            rec.point("stage2", *eval, "rejected",
                      "exceeds resource budget");
            return true;
        }
        std::uint64_t lat = eval->report.latencyCycles;
        bool accept;
        if (!feasible_ || lat < currentLatency_) {
            accept = true;
        } else {
            double delta = static_cast<double>(lat - currentLatency_);
            accept = rng_.nextUnit() <
                     std::exp(-delta / temperature_);
        }
        if (accept) {
            current_ = step.degrees;
            currentLatency_ = lat;
            feasible_ = true;
            rec.point("stage2", *eval, "accepted", "metropolis accept");
            if (lat < bestLatency_) {
                bestLatency_ = lat;
                best_ = step.degrees;
            }
        } else {
            rec.point("stage2", *eval, "rejected", "metropolis reject");
        }
        return true;
    }

    void
    endRound(SearchRecorder &rec) override
    {
        ++round_;
        temperature_ = std::max(1.0, temperature_ * 0.8);
        rec.note("strategy", "stage2",
                 "anneal: round " + std::to_string(round_) + " of " +
                     std::to_string(ctx_.annealRounds) + " done");
    }

    std::vector<std::int64_t>
    result() const override
    {
        return best_;
    }

  private:
    StrategyContext ctx_;
    SplitMix64 rng_;
    std::vector<std::int64_t> current_;
    std::vector<std::int64_t> best_;
    std::uint64_t currentLatency_ = UINT64_MAX;
    std::uint64_t bestLatency_ = UINT64_MAX;
    bool feasible_ = false;
    double temperature_ = 1.0;
    int round_ = 0;
    int consumed_ = 0;
};

} // namespace

std::unique_ptr<SearchStrategy>
makeStrategy(StrategyKind kind, StrategyContext context)
{
    switch (kind) {
      case StrategyKind::Greedy:
        return std::make_unique<GreedyStrategy>(std::move(context));
      case StrategyKind::Beam:
        return std::make_unique<BeamStrategy>(std::move(context));
      case StrategyKind::Anneal:
        return std::make_unique<AnnealingStrategy>(std::move(context));
    }
    return std::make_unique<GreedyStrategy>(std::move(context));
}

} // namespace pom::dse
