#include "dse/dse.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "check/oracle.h"
#include "graph/dependence_graph.h"
#include "hls/bound.h"
#include "hls/count.h"
#include "hls/estimator_cache.h"
#include "hls/node_cache.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "pass/pipeline_cache.h"
#include "support/diagnostics.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace pom::dse {

using graph::DependenceGraph;
using graph::Hint;
using transform::PolyStmt;

double
DseResult::speedup() const
{
    return report.speedupOver(baseline);
}

namespace {

/** A fused optimization unit: statements sharing a top-level nest. */
struct Unit
{
    std::vector<size_t> members; ///< indices into the statement vector
    std::int64_t degree = 1;
    bool open = true;
};

/**
 * RAII sampler for the per-point estimate-latency histogram. Gated on
 * metricsEnabled() so the DSE hot loop pays one atomic load when
 * metrics are off.
 */
struct PointLatencyTimer
{
    bool active = obs::metricsEnabled();
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    ~PointLatencyTimer()
    {
        if (!active)
            return;
        obs::histogramRecord(
            "dse.point_ms",
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
};

std::string
hintKey(const Hint &h)
{
    return std::to_string(static_cast<int>(h.kind)) + ":" +
           std::to_string(h.fromLevel) + ":" + std::to_string(h.toLevel);
}

/** Number of leading schedule levels all members share. */
size_t
sharedDepth(const std::vector<PolyStmt> &stmts,
            const std::vector<size_t> &members)
{
    if (members.size() < 2)
        return 0;
    size_t depth = SIZE_MAX;
    const auto &first = stmts[members[0]].sched.betas;
    for (size_t m = 1; m < members.size(); ++m) {
        const auto &other = stmts[members[m]].sched.betas;
        size_t common = 0;
        size_t limit = std::min(first.size(), other.size());
        while (common < limit && first[common] == other[common])
            ++common;
        depth = std::min(depth, common);
    }
    return depth == SIZE_MAX ? 0 : depth;
}

/** Group statements by their top-level beta coordinate. */
std::vector<Unit>
groupUnits(const std::vector<PolyStmt> &stmts)
{
    std::map<std::int64_t, Unit> by_beta;
    for (size_t i = 0; i < stmts.size(); ++i)
        by_beta[stmts[i].sched.betas[0]].members.push_back(i);
    std::vector<Unit> units;
    for (auto &[beta, unit] : by_beta)
        units.push_back(std::move(unit));
    return units;
}

bool
anyProducerRelation(const std::vector<PolyStmt> &stmts,
                    const std::vector<size_t> &members)
{
    for (size_t a : members) {
        for (size_t b : members) {
            if (a == b)
                continue;
            if (poly::producesFor(stmts[a].accesses, stmts[b].accesses))
                return true;
        }
    }
    return false;
}

/** Per-level loop-carried flags of a statement. */
std::vector<bool>
carriedLevels(const PolyStmt &stmt)
{
    std::vector<bool> carried(stmt.numDims(), false);
    for (const auto &d : transform::selfDependences(stmt))
        carried[d.level] = true;
    return carried;
}

/**
 * Canonical digest of the function's compute semantics -- everything
 * the estimator can observe that the schedule fingerprint does not
 * already cover: array shapes/types and the statement expressions.
 * Feeds hls::designFingerprint() as the funcDigest component.
 */
std::string
functionDigest(const dsl::Function &func)
{
    std::ostringstream os;
    os << "fn " << func.name() << "\n";
    for (const dsl::Placeholder *p : func.placeholders()) {
        os << "ph " << p->name() << " t="
           << static_cast<int>(p->elementType()) << " [";
        for (auto d : p->shape())
            os << d << ",";
        os << "]\n";
    }
    for (const dsl::Compute *c : func.computes()) {
        os << "st " << c->name() << " " << c->dest().str() << " := "
           << c->rhs().str() << "\n";
    }
    return os.str();
}

/** Parse "S0:degree=4, S1:degree=2; partition ..." back into degrees. */
std::map<std::string, std::int64_t>
parsePrimitiveDegrees(const std::string &primitives)
{
    std::map<std::string, std::int64_t> out;
    std::string head = primitives.substr(0, primitives.find(';'));
    std::istringstream is(head);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        size_t b = tok.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        tok = tok.substr(b);
        size_t sep = tok.find(":degree=");
        if (sep == std::string::npos) {
            support::fatal("replay: malformed primitives token '" + tok +
                           "' (expected NAME:degree=N)");
        }
        std::int64_t degree = 0;
        if (!support::parseInt64(tok.substr(sep + 8), degree) ||
            degree < 1) {
            support::fatal("replay: bad parallelism degree in '" + tok +
                           "'");
        }
        out[tok.substr(0, sep)] = degree;
    }
    return out;
}

} // namespace

void
applyParallelSchedule(PolyStmt &stmt, std::int64_t degree,
                      std::int64_t inner_cap, const dsl::Function &func,
                      std::map<std::string, std::vector<std::int64_t>>
                          &partitions, size_t min_level,
                      bool ignore_carried)
{
    size_t n = stmt.numDims();
    auto carried = carriedLevels(stmt);
    if (ignore_carried)
        carried.assign(n, false);
    auto trips = hls::avgTrips(stmt.sched.domain);

    int inner = -1;
    for (int l = static_cast<int>(n) - 1;
         l >= static_cast<int>(min_level); --l) {
        if (!carried[l]) {
            inner = l;
            break;
        }
    }
    if (inner < 0 || degree == 1) {
        transform::setPipeline(stmt, stmt.sched.domain.dimName(n - 1), 1);
        return;
    }
    int outer = (inner > static_cast<int>(min_level) &&
                 !carried[inner - 1])
                    ? inner - 1
                    : -1;

    std::int64_t f_inner = std::min({degree, inner_cap, trips[inner]});
    std::int64_t f_outer = 1;
    if (outer >= 0 && f_inner < degree) {
        f_outer = std::min(degree / std::max<std::int64_t>(1, f_inner),
                           trips[outer]);
    }

    std::string inner_name = stmt.sched.domain.dimName(inner);
    std::string outer_name =
        outer >= 0 ? stmt.sched.domain.dimName(outer) : "";

    std::vector<std::string> unrolled;
    std::string pipeline_at;

    if (f_inner >= trips[inner]) {
        transform::setUnroll(stmt, inner_name, 0);
        unrolled.push_back(inner_name);
    } else {
        transform::split(stmt, inner_name, f_inner, inner_name + "_o",
                         inner_name + "_i");
        transform::setUnroll(stmt, inner_name + "_i", 0);
        unrolled.push_back(inner_name + "_i");
        pipeline_at = inner_name + "_o";
    }

    if (f_outer > 1) {
        if (f_outer >= trips[outer]) {
            transform::setUnroll(stmt, outer_name, 0);
            unrolled.push_back(outer_name);
        } else {
            transform::split(stmt, outer_name, f_outer, outer_name + "_o",
                             outer_name + "_i");
            transform::setUnroll(stmt, outer_name + "_i", 0);
            unrolled.push_back(outer_name + "_i");
            // Point loops innermost (the Fig. 6 tile order).
            if (!pipeline_at.empty()) {
                transform::interchange(stmt, outer_name + "_i",
                                       pipeline_at);
            }
        }
    }

    if (pipeline_at.empty()) {
        // The free levels were fully unrolled without a split. Pipeline
        // the loop just below the deepest unrolled level so that any
        // remaining (reduction) loops flatten into the pipeline; if the
        // unrolled block reaches the innermost level, fall back to the
        // innermost non-unrolled loop above it.
        auto is_unrolled = [&](const std::string &name) {
            return std::find(unrolled.begin(), unrolled.end(), name) !=
                   unrolled.end();
        };
        int deepest = -1;
        for (const std::string &u : unrolled) {
            deepest = std::max(deepest,
                               static_cast<int>(stmt.dimIndex(u)));
        }
        if (deepest >= 0 &&
            deepest + 1 < static_cast<int>(stmt.numDims())) {
            pipeline_at = stmt.sched.domain.dimName(deepest + 1);
        } else {
            for (int l = static_cast<int>(stmt.numDims()) - 1; l >= 0;
                 --l) {
                std::string name = stmt.sched.domain.dimName(l);
                if (!is_unrolled(name)) {
                    pipeline_at = name;
                    break;
                }
            }
        }
    }
    if (!pipeline_at.empty())
        transform::setPipeline(stmt, pipeline_at, 1);

    auto accesses = stmt.transformedAccesses();
    auto final_trips = hls::avgTrips(stmt.sched.domain);
    for (const std::string &uname : unrolled) {
        size_t udim = stmt.dimIndex(uname);
        std::int64_t copies = final_trips[udim];
        for (const auto &acc : accesses) {
            const dsl::Placeholder *p = func.findPlaceholder(acc.array);
            POM_ASSERT(p != nullptr, "unknown array in DSE");
            auto &factors = partitions[acc.array];
            factors.resize(p->shape().size(), 1);
            for (size_t r = 0; r < acc.map.numResults(); ++r) {
                if (acc.map.result(r).coeff(udim) == 0)
                    continue;
                std::int64_t f =
                    std::min<std::int64_t>(copies, p->shape()[r]);
                factors[r] = std::max(factors[r], f);
            }
        }
    }
}

void
applyPartitions(dsl::Function &func,
                const std::map<std::string, std::vector<std::int64_t>>
                    &partitions)
{
    for (const dsl::Placeholder *p : func.placeholders()) {
        dsl::Placeholder *mp = func.findPlaceholderMut(p->name());
        auto it = partitions.find(p->name());
        if (it == partitions.end()) {
            mp->clearPartition();
            continue;
        }
        bool any = false;
        for (auto f : it->second)
            any |= f > 1;
        if (any)
            mp->partition(it->second, "cyclic");
        else
            mp->clearPartition();
    }
}

namespace {

class Engine
{
  public:
    Engine(dsl::Function &func, const DseOptions &options)
        : func_(func), opt_(options),
          device_(options.device.scaled(options.resourceFraction)),
          funcDigest_(functionDigest(func))
    {}

    DseResult
    run()
    {
        obs::Span span("dse.autoDSE", "dse");
        auto t0 = std::chrono::steady_clock::now();
        DseResult result;

        // Baseline: the unscheduled program.
        {
            obs::Span baseline_span("dse.baseline", "dse");
            auto base_stmts = lower::extractStmts(func_);
            lower::applyDirectives(base_stmts, /*ordering_only=*/true);
            auto plain = lower::lowerStmts(func_, std::move(base_stmts));
            result.baseline = hls::estimate(func_, plain, estOptions());
            recordPoint("baseline", "(unscheduled)", result.baseline,
                        "info", "unoptimized reference design");
            frontierInsert(result.baseline, "(unscheduled)", points_);
        }

        std::vector<PolyStmt> stmts = lower::extractStmts(func_);
        if (opt_.applyUserDirectives)
            lower::applyDirectives(stmts);

        {
            obs::Span stage1_span("dse.stage1", "dse");
            stage1(stmts, result.log);
        }
        {
            obs::Span stage2_span("dse.stage2", "dse");
            stage2(stmts, result);
        }

        auto t1 = std::chrono::steady_clock::now();
        result.dseSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        result.pointsExplored = points_;
        result.pointsVerified = verified_;
        result.journal = std::move(journal_);
        result.frontier = frontier_.points();
        result.frontierRounds = std::move(frontierRounds_);
        span.arg("points_explored", static_cast<std::int64_t>(points_));
        return result;
    }

    /** Re-materialize one journaled design point (replayPoint()). */
    ReplayResult
    replay(const obs::JournalEntry &entry)
    {
        obs::Span span("dse.replay", "dse");
        ReplayResult out;
        out.entry = entry;

        if (entry.primitives == "(unscheduled)") {
            // The baseline point: ordering-only directives, no search.
            auto stmts = lower::extractStmts(func_);
            lower::applyDirectives(stmts, /*ordering_only=*/true);
            out.design = lower::lowerStmts(func_, std::move(stmts));
            out.report = hls::estimate(func_, out.design, estOptions());
            out.primitives = entry.primitives;
            return out;
        }

        auto degrees = parsePrimitiveDegrees(entry.primitives);

        // Stage 1 is deterministic: re-running it reproduces the
        // statement schedules the journaled degrees were applied to.
        std::vector<PolyStmt> stmts = lower::extractStmts(func_);
        if (opt_.applyUserDirectives)
            lower::applyDirectives(stmts);
        std::vector<std::string> log;
        stage1(stmts, log);

        auto units = groupUnits(stmts);
        for (auto &u : units) {
            const std::string &name = stmts[u.members[0]].sched.name;
            auto it = degrees.find(name);
            if (it == degrees.end()) {
                support::fatal(
                    "replay: journal names no parallelism degree for "
                    "statement '" + name +
                    "' -- was it recorded from this workload?");
            }
            u.degree = it->second;
        }

        Candidate c = materialize(stmts, units);
        if (c.primitives != entry.primitives) {
            support::fatal(
                "replay: re-derived primitives do not match the "
                "journal entry -- the function differs from the one "
                "the journal was recorded from.\n  journal:  " +
                entry.primitives + "\n  replayed: " + c.primitives);
        }
        out.design = std::move(c.design);
        out.report = std::move(c.report);
        out.primitives = std::move(c.primitives);
        return out;
    }

  private:
    hls::EstimatorOptions
    estOptions() const
    {
        hls::EstimatorOptions eo;
        eo.device = device_;
        eo.sharing = opt_.sharing;
        return eo;
    }

    // ----- search journal -----------------------------------------------

    /** Journal one explored design point with its verdict. */
    void
    recordPoint(const std::string &phase, const std::string &primitives,
                const hls::SynthesisReport &report,
                const std::string &verdict, const std::string &reason)
    {
        obs::JournalEntry e;
        e.kind = "point";
        e.phase = phase;
        e.point = points_;
        e.primitives = primitives;
        e.latencyCycles = report.latencyCycles;
        e.dsp = report.resources.dsp;
        e.bramBits = report.resources.bramBits;
        e.lut = report.resources.lut;
        e.ff = report.resources.ff;
        e.verdict = verdict;
        e.reason = reason;
        journal_.push_back(std::move(e));
    }

    /** Journal a search decision and mirror it into the text log. */
    void
    note(const char *kind, const char *phase, const std::string &detail,
         std::vector<std::string> &log)
    {
        log.push_back(detail);
        support::diag(support::DiagLevel::Debug, detail);
        obs::JournalEntry e;
        e.kind = kind;
        e.phase = phase;
        e.detail = detail;
        journal_.push_back(std::move(e));
    }

    // ----- Stage 1: dependence-aware code transformation ----------------

    void
    stage1(std::vector<PolyStmt> &stmts, std::vector<std::string> &log)
    {
        // Remember the original top-level grouping for re-fusion.
        std::map<size_t, std::int64_t> orig_group;
        for (size_t i = 0; i < stmts.size(); ++i)
            orig_group[i] = stmts[i].sched.betas[0];

        DependenceGraph graph(stmts);
        int skew_counter = 0;
        for (int iter = 0; iter < opt_.maxStage1Iterations; ++iter) {
            graph.refresh(stmts);
            bool changed = false;

            // Resolve conflicting strategies inside fused nests by
            // splitting the nest (Fig. 10 step 1).
            auto units = groupUnits(stmts);
            for (const auto &unit : units) {
                if (unit.members.size() < 2)
                    continue;
                std::set<std::string> keys;
                for (size_t m : unit.members)
                    keys.insert(hintKey(graph.suggest(m)));
                if (keys.size() < 2)
                    continue;
                if (anyProducerRelation(stmts, unit.members)) {
                    note("stage1", "stage1",
                         "stage1: conflicting hints in fused nest "
                         "but distribution is illegal; skipping", log);
                    continue;
                }
                std::int64_t next_beta = maxBeta(stmts) + 16;
                for (size_t m = 1; m < unit.members.size(); ++m) {
                    stmts[unit.members[m]].sched.betas[0] = next_beta;
                    next_beta += 16;
                }
                note("stage1", "stage1",
                     "stage1: split fused nest to resolve "
                     "conflicting transformation strategies", log);
                changed = true;
            }
            if (changed) {
                continue; // re-analyze with the new grouping
            }

            // Apply per-statement hints. Members of a (still) fused nest
            // have identical hints here; apply positionally to each.
            units = groupUnits(stmts);
            for (const auto &unit : units) {
                size_t shared = sharedDepth(stmts, unit.members);
                Hint hint = graph.suggest(unit.members[0]);
                if (unit.members.size() > 1) {
                    std::set<std::string> keys;
                    for (size_t m : unit.members)
                        keys.insert(hintKey(graph.suggest(m)));
                    if (keys.size() > 1) {
                        // Conflicting hints survive only when the nest
                        // could not be distributed (producer relation).
                        note("stage1", "stage1",
                             "stage1: conflicting hints in an "
                             "undistributable nest; skipping", log);
                        continue;
                    }
                    // Identical hints: applying the same transform to
                    // every member keeps bounds equal. Touching shared
                    // levels is only safe when no data flows between
                    // the members (a common permutation preserves
                    // aligned cross dependences).
                    if (hint.kind != Hint::Kind::None &&
                        hint.fromLevel < shared &&
                        anyProducerRelation(stmts, unit.members)) {
                        note("stage1", "stage1",
                             "stage1: hint touches a shared loop "
                             "of a producer/consumer nest; skipping", log);
                        continue;
                    }
                }
                for (size_t m : unit.members) {
                    PolyStmt &stmt = stmts[m];
                    Hint h = graph.suggest(m);
                    if (h.kind == Hint::Kind::Interchange) {
                        transform::interchange(
                            stmt, stmt.sched.domain.dimName(h.fromLevel),
                            stmt.sched.domain.dimName(h.toLevel));
                        note("stage1", "stage1",
                             "stage1: interchange " + stmt.sched.name,
                             log);
                        changed = true;
                    } else if (h.kind == Hint::Kind::Skew) {
                        size_t n = stmt.numDims();
                        std::string outer = stmt.sched.domain.dimName(n - 2);
                        std::string inner = stmt.sched.domain.dimName(n - 1);
                        std::string fresh =
                            inner + "_sk" + std::to_string(skew_counter++);
                        transform::skew(stmt, outer, inner, 1, outer,
                                        fresh);
                        note("stage1", "stage1",
                             "stage1: skew " + stmt.sched.name, log);
                        changed = true;
                    }
                }
            }
            if (!changed)
                break;
        }

        refuse(stmts, orig_group, log);
    }

    static std::int64_t
    maxBeta(const std::vector<PolyStmt> &stmts)
    {
        std::int64_t m = 0;
        for (const auto &s : stmts)
            m = std::max(m, s.sched.betas[0]);
        return m;
    }

    /** Conservative re-fusion of previously split nests (Fig. 10 (3)). */
    void
    refuse(std::vector<PolyStmt> &stmts,
           const std::map<size_t, std::int64_t> &orig_group,
           std::vector<std::string> &log)
    {
        for (size_t a = 0; a < stmts.size(); ++a) {
            for (size_t b = a + 1; b < stmts.size(); ++b) {
                if (orig_group.at(a) != orig_group.at(b))
                    continue; // were never fused
                if (stmts[a].sched.betas[0] == stmts[b].sched.betas[0])
                    continue; // still fused
                if (stmts[a].numDims() != stmts[b].numDims())
                    continue;
                if (poly::producesFor(stmts[a].accesses,
                                      stmts[b].accesses) ||
                    poly::producesFor(stmts[b].accesses,
                                      stmts[a].accesses)) {
                    continue; // data flows between them: stay split
                }
                bool bounds_match = true;
                for (size_t l = 0; l < stmts[a].numDims(); ++l) {
                    if (!(stmts[a].sched.domain.boundsForCodegen(l) ==
                          stmts[b].sched.domain.boundsForCodegen(l))) {
                        bounds_match = false;
                        break;
                    }
                }
                if (!bounds_match)
                    continue;
                transform::fuseInto(stmts[b], stmts[a]);
                note("stage1", "stage1",
                     "stage1: conservatively re-fused " +
                         stmts[a].sched.name + " and " +
                         stmts[b].sched.name, log);
            }
        }
    }

    // ----- Stage 2: strategy-driven design space exploration -------------
    //
    // The search trajectory belongs to a SearchStrategy (dse/strategy.h:
    // greedy / beam / anneal); this engine owns everything that must
    // stay byte-deterministic at any worker count. Each round the
    // strategy plans an ordered list of steps whose content cannot
    // depend on the worker count; the engine evaluates the trial steps
    // speculatively on the thread pool (at most `width` in flight,
    // topped up as results are consumed) and hands results to
    // consume() strictly in plan order on this thread, numbering
    // points, journaling, and growing the Pareto frontier at consume
    // time. A strategy abandons the rest of a round by returning false
    // (greedy does on its first acceptance); the abandoned futures are
    // parked and drained later, their results never observed. With
    // width == 1 this degenerates to a fully sequential search; for any
    // width the journal -- v1 events and v2 frontier sections alike --
    // is byte-identical by construction.

    /** Recorder the strategies journal through (numbering stays here). */
    class Recorder final : public SearchRecorder
    {
      public:
        Recorder(Engine &engine, DseResult &result)
            : engine_(engine), result_(result)
        {}

        void
        point(const std::string &phase, const PointEval &ev,
              const std::string &verdict,
              const std::string &reason) override
        {
            engine_.recordPoint(phase, ev.primitives, ev.report, verdict,
                                reason);
        }

        void
        event(const obs::JournalEntry &entry) override
        {
            engine_.journal_.push_back(entry);
        }

        void
        note(const std::string &kind, const std::string &phase,
             const std::string &detail) override
        {
            engine_.note(kind.c_str(), phase.c_str(), detail,
                         result_.log);
        }

        void
        log(const std::string &line) override
        {
            result_.log.push_back(line);
        }

      private:
        Engine &engine_;
        DseResult &result_;
    };

    /** Offer a feasible estimated point to the Pareto frontier. */
    void
    frontierInsert(const hls::SynthesisReport &report,
                   const std::string &primitives, int point)
    {
        if (!report.resources.fitsIn(device_))
            return;
        FrontierPoint p;
        p.point = point;
        p.primitives = primitives;
        p.latencyCycles = report.latencyCycles;
        p.dsp = report.resources.dsp;
        p.bramBits = report.resources.bramBits;
        p.lut = report.resources.lut;
        switch (frontier_.insert(p)) {
          case ParetoFrontier::Insert::Added:
            obs::counterAdd("dse.frontier.inserts");
            break;
          case ParetoFrontier::Insert::Dominated:
            obs::counterAdd("dse.frontier.dominated");
            break;
          case ParetoFrontier::Insert::Duplicate:
            break;
        }
        obs::gaugeSet("dse.frontier.size",
                      static_cast<double>(frontier_.size()));
    }

    /** Append the current frontier as the next v2 journal section. */
    void
    snapshotFrontier(StrategyKind kind)
    {
        obs::FrontierRound round;
        round.round = static_cast<int>(frontierRounds_.size()) + 1;
        round.strategy = strategyName(kind);
        round.points = frontier_.points();
        frontierRounds_.push_back(std::move(round));
    }

    void
    stage2(const std::vector<PolyStmt> &base, DseResult &result)
    {
        auto units = groupUnits(base);
        for (auto &u : units)
            u.degree = 1;

        StrategyContext ctx;
        for (const auto &u : units) {
            ctx.unitNames.push_back(unitNames(base, u));
            std::vector<std::string> members;
            for (size_t m : u.members)
                members.push_back(base[m].sched.name);
            ctx.unitMembers.push_back(std::move(members));
            ctx.maxDegree.push_back(maxDegreeOf(base, u));
        }
        ctx.maxParallelism = opt_.maxParallelism;
        ctx.device = device_;
        ctx.beamWidth = opt_.beamWidth;
        ctx.annealRounds = opt_.annealRounds;
        ctx.annealBatch = opt_.annealBatch;
        ctx.seed = opt_.annealSeed;
        ctx.pointBudget = opt_.strategyPointBudget;
        std::unique_ptr<SearchStrategy> strategy =
            makeStrategy(opt_.strategy, std::move(ctx));

        int width = speculationWidth();
        support::ThreadPool *pool =
            width > 1 ? &support::ThreadPool::global() : nullptr;
        std::vector<std::future<Evaluation>> stale;

        // Evaluate the initial (pipeline-only) design. Never pruned:
        // the strategy seeds from it unconditionally, so it must carry
        // the true estimate.
        Evaluation init = evaluate(base, units, {}, false);
        ++points_;
        recordPoint("stage2-init", init.primitives, init.report,
                    "accepted", "initial pipeline-only design");
        result.log.push_back("stage2: initial design " +
                             init.report.str(device_));
        frontierInsert(init.report, init.primitives, points_);
        strategy->begin(PointEval{init.report, init.primitives});

        Recorder rec(*this, result);
        auto unitsWith =
            [&units](const std::vector<std::int64_t> &degrees) {
                auto copy = units;
                for (size_t i = 0; i < copy.size(); ++i)
                    copy[i].degree = degrees[i];
                return copy;
            };

        while (true) {
            std::vector<StrategyStep> steps = strategy->plan();
            if (steps.empty())
                break;

            std::vector<std::future<Evaluation>> futures(steps.size());
            std::vector<char> submitted(steps.size(), 0);
            size_t next_submit = 0;
            int outstanding = 0;
            bool round_evaluated = false;

            for (size_t si = 0; si < steps.size(); ++si) {
                // Keep up to `width` speculative evaluations in flight.
                if (pool != nullptr) {
                    while (next_submit < steps.size() &&
                           outstanding < width) {
                        size_t sj = next_submit++;
                        if (!steps[sj].needsEval)
                            continue;
                        auto trial_units = unitsWith(steps[sj].degrees);
                        // parentDegrees is copied: a stale future can
                        // outlive the round's steps vector.
                        futures[sj] = pool->submit(
                            [this, &base, tu = std::move(trial_units),
                             pd = steps[sj].parentDegrees]() {
                                return evaluate(base, tu, pd);
                            });
                        submitted[sj] = 1;
                        ++outstanding;
                    }
                }

                const StrategyStep &s = steps[si];
                PointEval pe;
                bool have = false;
                if (s.needsEval) {
                    Evaluation ev;
                    if (submitted[si]) {
                        ev = futures[si].get();
                        --outstanding;
                    } else {
                        ev = evaluate(base, unitsWith(s.degrees),
                                      s.parentDegrees);
                    }
                    pe.report = std::move(ev.report);
                    pe.primitives = std::move(ev.primitives);
                    have = true;
                    ++points_;
                    round_evaluated = true;
                }
                bool keep_going =
                    strategy->consume(si, s, have ? &pe : nullptr, rec);
                if (have)
                    frontierInsert(pe.report, pe.primitives, points_);
                if (!keep_going) {
                    // The remaining speculations assumed this round
                    // continued unchanged; park them for draining.
                    // Their results never reach the journal.
                    for (size_t sj = si + 1; sj < steps.size(); ++sj) {
                        if (submitted[sj])
                            stale.push_back(std::move(futures[sj]));
                    }
                    break;
                }
            }
            strategy->endRound(rec);
            if (round_evaluated)
                snapshotFrontier(strategy->kind());
        }

        // Settle abandoned speculative work before the final
        // materialization mutates the function's partition state.
        for (auto &f : stale)
            f.get();

        // Materialize the winning design (also rewrites partitions).
        // Its estimate was stored by the search, so with memoization on
        // this is always an estimator-cache hit.
        std::vector<std::int64_t> degrees = strategy->result();
        POM_ASSERT(degrees.size() == units.size(),
                   "strategy returned a malformed degree vector");
        for (size_t i = 0; i < units.size(); ++i)
            units[i].degree = degrees[i];
        Candidate winner = materialize(base, units);
        ++points_;
        recordPoint("final", winner.primitives, winner.report, "accepted",
                    "selected design");
        frontierInsert(winner.report, winner.primitives, points_);
        snapshotFrontier(strategy->kind());
        result.design = std::move(winner.design);
        result.report = std::move(winner.report);
        for (const auto &u : units) {
            for (size_t m : u.members) {
                result.parallelism.emplace_back(base[m].sched.name,
                                                u.degree);
            }
        }
    }

    /** A search-time design point: report only, never a lowered design. */
    struct Evaluation
    {
        hls::SynthesisReport report;
        std::string primitives; ///< journal summary of the schedule
        bool fromCache = false;
    };

    /** A materialized design point (the final / replayed design). */
    struct Candidate
    {
        lower::LoweredFunction design;
        hls::SynthesisReport report;
        std::string primitives; ///< journal summary of the schedule
    };

    /** "S0+S1" member list of a unit, for journal messages. */
    static std::string
    unitNames(const std::vector<PolyStmt> &base, const Unit &unit)
    {
        std::string out;
        for (size_t m : unit.members) {
            out += out.empty() ? "" : "+";
            out += base[m].sched.name;
        }
        return out;
    }

    /** Journal summary of the applied primitives of one candidate. */
    static std::string
    primitivesSummary(
        const std::vector<PolyStmt> &base, const std::vector<Unit> &units,
        const std::map<std::string, std::vector<std::int64_t>> &partitions)
    {
        std::string out;
        for (const auto &unit : units) {
            for (size_t m : unit.members) {
                out += out.empty() ? "" : ", ";
                out += base[m].sched.name + ":degree=" +
                       std::to_string(unit.degree);
            }
        }
        for (const auto &[array, factors] : partitions) {
            bool any = false;
            for (auto f : factors)
                any |= f > 1;
            if (!any)
                continue;
            out += "; partition " + array + "=[";
            for (size_t i = 0; i < factors.size(); ++i) {
                if (i)
                    out += ",";
                out += std::to_string(factors[i]);
            }
            out += "]:cyclic";
        }
        return out;
    }

    /** Product of free-level trip counts bounds the parallelism. */
    std::int64_t
    maxDegreeOf(const std::vector<PolyStmt> &base, const Unit &unit) const
    {
        std::int64_t cap = INT64_MAX;
        for (size_t m : unit.members) {
            const PolyStmt &stmt = base[m];
            auto carried = carriedLevels(stmt);
            auto trips = hls::avgTrips(stmt.sched.domain);
            std::int64_t product = 1;
            for (size_t l = 0; l < stmt.numDims(); ++l) {
                if (!carried[l])
                    product *= trips[l];
            }
            cap = std::min(cap, product);
        }
        return std::max<std::int64_t>(1, cap);
    }

    /** Effective stage-2 speculation width (1 = sequential search). */
    int
    speculationWidth() const
    {
        if (opt_.verifyEachPoint)
            return 1; // every point must really be lowered + interpreted
        int width = opt_.jobs > 0 ? opt_.jobs : support::jobs();
        if (width <= 1)
            return 1;
        // A pool worker must never wait on futures of its own pool
        // (e.g. autoDSE called from a parallel sweep); fall back to the
        // sequential search instead of deadlocking.
        if (support::ThreadPool::global().isWorkerThread())
            return 1;
        return width;
    }

    /**
     * Apply unit degrees to a copy of the base statements, producing
     * the transformed schedules, the partition plan and the journal
     * summary. Pure with respect to the engine: safe to run on several
     * pool workers at once.
     */
    struct Schedules
    {
        std::vector<PolyStmt> stmts;
        hls::PartitionPlan partitions;
        std::string primitives;
    };

    Schedules
    scheduleUnits(const std::vector<PolyStmt> &base,
                  const std::vector<Unit> &units) const
    {
        Schedules s;
        s.stmts = base;
        for (const auto &unit : units) {
            size_t min_level = 0;
            if (unit.members.size() > 1 &&
                anyProducerRelation(s.stmts, unit.members)) {
                min_level = sharedDepth(s.stmts, unit.members);
            }
            for (size_t m : unit.members) {
                applyParallelSchedule(s.stmts[m], unit.degree,
                                      opt_.innerUnrollCap, func_,
                                      s.partitions, min_level);
            }
        }
        s.primitives = primitivesSummary(base, units, s.partitions);
        return s;
    }

    /**
     * One unit's scheduled statements under a fixed degree, with the
     * partition factors its unrolled loops demand and the canonical
     * schedule fragment of each member. Memoized per (unit, degree):
     * a unit's schedule depends only on its own base statements (the
     * min_level probe reads just the unit's untransformed members), so
     * the stage-2 search -- which doubles one unit per step -- recomputes
     * only the changed unit and shares everything else.
     */
    struct UnitSchedule
    {
        std::vector<PolyStmt> stmts; ///< member order (= unit.members)
        hls::PartitionPlan partitions;
        std::vector<std::string> fragments;
    };

    /** Memoized schedule of unit @p ui at @p unit's current degree. */
    std::shared_ptr<const UnitSchedule>
    unitSchedule(const std::vector<PolyStmt> &base, size_t ui,
                 const Unit &unit)
    {
        std::pair<size_t, std::int64_t> memoKey{ui, unit.degree};
        {
            std::lock_guard<std::mutex> lock(unitMemoMutex_);
            auto it = unitMemo_.find(memoKey);
            if (it != unitMemo_.end())
                return it->second;
        }
        auto us = std::make_shared<UnitSchedule>();
        size_t min_level = 0;
        if (unit.members.size() > 1 &&
            anyProducerRelation(base, unit.members)) {
            min_level = sharedDepth(base, unit.members);
        }
        for (size_t m : unit.members) {
            PolyStmt stmt = base[m];
            applyParallelSchedule(stmt, unit.degree, opt_.innerUnrollCap,
                                  func_, us->partitions, min_level);
            us->fragments.push_back(hls::stmtScheduleFragment(stmt));
            us->stmts.push_back(std::move(stmt));
        }
        // First writer wins so concurrent evaluations share one copy.
        std::lock_guard<std::mutex> lock(unitMemoMutex_);
        return unitMemo_.emplace(memoKey, std::move(us)).first->second;
    }

    /**
     * Fold per-unit partition demands into one plan. Elementwise max
     * equals the sequential accumulation of scheduleUnits(): every
     * factor vector is full-rank (resized to the array's rank with 1s)
     * and max is associative and commutative.
     */
    static hls::PartitionPlan
    mergePartitions(
        const std::vector<std::shared_ptr<const UnitSchedule>> &parts)
    {
        hls::PartitionPlan merged;
        for (const auto &us : parts) {
            for (const auto &[array, factors] : us->partitions) {
                auto &dst = merged[array];
                if (dst.size() < factors.size())
                    dst.resize(factors.size(), 1);
                for (size_t i = 0; i < factors.size(); ++i)
                    dst[i] = std::max(dst[i], factors[i]);
            }
        }
        return merged;
    }

    /** Name-sorted bankings of the arrays @p us's statements access. */
    std::vector<hls::NodeArrayBanking>
    unitBankings(const UnitSchedule &us,
                 const hls::PartitionPlan &partitions) const
    {
        std::set<std::string> names;
        for (const PolyStmt &stmt : us.stmts) {
            for (const auto &a : stmt.accesses)
                names.insert(a.array);
        }
        std::vector<hls::NodeArrayBanking> out;
        for (const std::string &name : names) {
            const dsl::Placeholder *p = func_.findPlaceholder(name);
            POM_ASSERT(p != nullptr, "unknown array in DSE");
            hls::ArrayBanking b = hls::effectiveBanking(*p, &partitions);
            out.push_back({name, b.banks, b.complete});
        }
        return out;
    }

    /**
     * Admissible-bound rejection (`--dse-prune`): when the analytic
     * lower bound already exceeds the budget the full estimator would
     * have rejected the point too, so skip lowering and estimation
     * entirely. The journaled numbers become the bound's (latency 0).
     * Returns true when the candidate was pruned.
     */
    bool
    pruneCheck(
        const std::vector<std::vector<const PolyStmt *>> &unitStmts,
        const hls::PartitionPlan &partitions, Evaluation &ev,
        obs::Span &span)
    {
        if (!opt_.prune)
            return false;
        hls::EstimatorOptions eo = estOptions();
        eo.partitionOverride = &partitions;
        hls::Resources bound =
            hls::admissibleResourceBound(func_, unitStmts, eo);
        if (bound.fitsIn(device_))
            return false;
        obs::counterAdd("dse.prune.rejected");
        span.arg("pruned", "bound exceeds budget");
        ev.report.resources = bound;
        ev.report.powerW = hls::powerProxyW(bound);
        return true;
    }

    /**
     * Incremental candidate evaluation: fetch each unit's memoized
     * schedule, rebuild the whole-design fingerprint from the memoized
     * fragments (base statement order -- the same bytes the monolithic
     * builder hashes, so materialize() still gets its guaranteed cache
     * hit), and on a whole-design miss compose the report from
     * content-addressed per-unit NodeReports, lowering and estimating
     * only units whose schedule was never seen. Unit order is beta
     * order, which is exactly the top-level order of the full AST, so
     * the composed report is byte-identical to the monolithic path's.
     */
    Evaluation
    evaluateIncremental(const std::vector<PolyStmt> &base,
                        const std::vector<Unit> &units,
                        const std::vector<std::int64_t> &parentDegrees,
                        bool allowPrune)
    {
        obs::Span span("dse.point", "dse");
        PointLatencyTimer pointTimer;
        Evaluation ev;

        std::vector<std::shared_ptr<const UnitSchedule>> parts;
        parts.reserve(units.size());
        for (size_t ui = 0; ui < units.size(); ++ui)
            parts.push_back(unitSchedule(base, ui, units[ui]));
        hls::PartitionPlan merged = mergePartitions(parts);
        ev.primitives = primitivesSummary(base, units, merged);
        span.arg("primitives", ev.primitives);

        if (obs::metricsEnabled() &&
            parentDegrees.size() == units.size()) {
            std::int64_t changed = 0;
            for (size_t ui = 0; ui < units.size(); ++ui)
                changed += units[ui].degree != parentDegrees[ui];
            obs::counterAdd("dse.delta.changed_units", changed);
            obs::counterAdd("dse.delta.total_units",
                            static_cast<std::int64_t>(units.size()));
        }

        if (opt_.prune && allowPrune) {
            std::vector<std::vector<const PolyStmt *>> unitStmts;
            for (const auto &us : parts) {
                std::vector<const PolyStmt *> members;
                for (const PolyStmt &stmt : us->stmts)
                    members.push_back(&stmt);
                unitStmts.push_back(std::move(members));
            }
            if (pruneCheck(unitStmts, merged, ev, span))
                return ev;
        }

        std::vector<const std::string *> fragments(base.size(), nullptr);
        for (size_t ui = 0; ui < units.size(); ++ui) {
            const auto &members = units[ui].members;
            for (size_t k = 0; k < members.size(); ++k)
                fragments[members[k]] = &parts[ui]->fragments[k];
        }
        std::string key = hls::designFingerprintFragments(
            funcDigest_, fragments, merged, estOptions());
        if (auto hit = hls::EstimatorCache::global().lookup(key)) {
            obs::counterAdd("dse.cache.hits");
            ev.report = std::move(*hit);
            ev.fromCache = true;
            span.arg("cache", "hit");
            span.arg("latency_cycles",
                     static_cast<std::int64_t>(ev.report.latencyCycles));
            return ev;
        }
        obs::counterAdd("dse.cache.misses");
        span.arg("cache", "miss");

        hls::EstimatorOptions eo = estOptions();
        eo.partitionOverride = &merged;
        std::vector<hls::NodeReport> nodes;
        for (size_t ui = 0; ui < units.size(); ++ui) {
            const UnitSchedule &us = *parts[ui];
            std::vector<const std::string *> memberFragments;
            for (const std::string &f : us.fragments)
                memberFragments.push_back(&f);
            std::string nodeKey = hls::nodeFingerprint(
                funcDigest_, memberFragments, unitBankings(us, merged),
                eo.costs);
            if (auto cached =
                    hls::NodeReportCache::global().lookup(nodeKey)) {
                obs::counterAdd("dse.node_cache.hits");
                for (auto &n : *cached)
                    nodes.push_back(std::move(n));
                continue;
            }
            obs::counterAdd("dse.node_cache.misses");
            auto lowered = lower::lowerNodeStmts(us.stmts);
            std::vector<hls::NodeReport> fresh =
                hls::estimateNodes(func_, lowered, eo);
            hls::NodeReportCache::global().store(nodeKey, fresh);
            for (auto &n : fresh)
                nodes.push_back(std::move(n));
        }
        ev.report = hls::combineNodeReports(func_, nodes, eo);
        hls::EstimatorCache::global().store(key, ev.report);
        span.arg("latency_cycles",
                 static_cast<std::int64_t>(ev.report.latencyCycles));
        return ev;
    }

    /**
     * Estimate one candidate design point without mutating the shared
     * function (partitioning goes through the estimator override) and
     * without touching the journal or the point counter -- the caller
     * merges results deterministically. Memoized in the process-wide
     * estimator cache unless the oracle must see every lowered design.
     * With incrementalEstimate (and memoization available) the work is
     * proportional to the units that changed relative to
     * @p parentDegrees instead of the whole design.
     *
     * @p allowPrune is false for seed points the strategy accepts
     * unconditionally (the initial pipeline-only design): the incumbent
     * must carry the true estimate, never the bound's numbers, or later
     * latency-improvement comparisons would diverge from the unpruned
     * trajectory.
     */
    Evaluation
    evaluate(const std::vector<PolyStmt> &base,
             const std::vector<Unit> &units,
             const std::vector<std::int64_t> &parentDegrees = {},
             bool allowPrune = true)
    {
        if (opt_.incrementalEstimate && opt_.memoize &&
            !opt_.verifyEachPoint) {
            return evaluateIncremental(base, units, parentDegrees,
                                       allowPrune);
        }
        obs::Span span("dse.point", "dse");
        PointLatencyTimer pointTimer;
        Schedules s = scheduleUnits(base, units);
        Evaluation ev;
        ev.primitives = s.primitives;
        span.arg("primitives", ev.primitives);

        if (opt_.prune && allowPrune) {
            std::vector<std::vector<const PolyStmt *>> unitStmts;
            for (const auto &unit : units) {
                std::vector<const PolyStmt *> members;
                for (size_t m : unit.members)
                    members.push_back(&s.stmts[m]);
                unitStmts.push_back(std::move(members));
            }
            if (pruneCheck(unitStmts, s.partitions, ev, span))
                return ev;
        }

        bool use_cache = opt_.memoize && !opt_.verifyEachPoint;
        std::string key;
        if (use_cache) {
            key = hls::designFingerprint(funcDigest_, s.stmts,
                                         s.partitions, estOptions());
            if (auto hit = hls::EstimatorCache::global().lookup(key)) {
                obs::counterAdd("dse.cache.hits");
                ev.report = std::move(*hit);
                ev.fromCache = true;
                span.arg("cache", "hit");
                span.arg("latency_cycles",
                         static_cast<std::int64_t>(
                             ev.report.latencyCycles));
                return ev;
            }
            obs::counterAdd("dse.cache.misses");
            span.arg("cache", "miss");
        }

        // Per-point verification must exercise the real pipeline (the
        // oracle interprets the lowered IR), so it opts out of the
        // pipeline cache; the plain estimation path reads only stmts +
        // AST and can skip materializing cached IR entirely.
        std::optional<pass::PipelineCacheDisableScope> no_pipeline_cache;
        if (opt_.verifyEachPoint)
            no_pipeline_cache.emplace();
        auto lowered = lower::lowerStmts(func_, std::move(s.stmts),
                                         /*needIr=*/opt_.verifyEachPoint);
        hls::EstimatorOptions eo = estOptions();
        eo.partitionOverride = &s.partitions;
        ev.report = hls::estimate(func_, lowered, eo);
        if (use_cache)
            hls::EstimatorCache::global().store(key, ev.report);
        span.arg("latency_cycles",
                 static_cast<std::int64_t>(ev.report.latencyCycles));
        if (opt_.verifyEachPoint) {
            check::OracleOptions oracle;
            oracle.seed = opt_.verifySeed;
            check::OracleResult res =
                check::checkLowered(func_, lowered, oracle);
            if (!res.equivalent)
                support::fatal("DSE produced a non-equivalent design "
                               "point:\n" +
                               res.message);
            ++verified_;
        }
        return ev;
    }

    /**
     * Fully materialize a design point: rewrite the function's
     * partition directives, lower, and estimate (a guaranteed cache hit
     * when the search already evaluated this configuration). Only the
     * final selected design and journal replays pay for this.
     */
    Candidate
    materialize(const std::vector<PolyStmt> &base,
                const std::vector<Unit> &units)
    {
        obs::Span span("dse.point", "dse");
        PointLatencyTimer pointTimer;
        Schedules s = scheduleUnits(base, units);
        applyPartitions(func_, s.partitions);

        Candidate c;
        c.primitives = s.primitives;
        span.arg("primitives", c.primitives);

        // Fingerprint before lowering: lowerStmts consumes the stmts.
        bool use_cache = opt_.memoize && !opt_.verifyEachPoint;
        std::string key;
        if (use_cache) {
            key = hls::designFingerprint(funcDigest_, s.stmts,
                                         s.partitions, estOptions());
        }
        std::optional<pass::PipelineCacheDisableScope> no_pipeline_cache;
        if (opt_.verifyEachPoint)
            no_pipeline_cache.emplace();
        c.design = lower::lowerStmts(func_, std::move(s.stmts));

        std::optional<hls::SynthesisReport> hit;
        if (use_cache)
            hit = hls::EstimatorCache::global().lookup(key);
        if (hit) {
            obs::counterAdd("dse.cache.hits");
            span.arg("cache", "hit");
            c.report = std::move(*hit);
        } else {
            if (use_cache) {
                obs::counterAdd("dse.cache.misses");
                span.arg("cache", "miss");
            }
            hls::EstimatorOptions eo = estOptions();
            eo.partitionOverride = &s.partitions;
            c.report = hls::estimate(func_, c.design, eo);
            if (use_cache)
                hls::EstimatorCache::global().store(key, c.report);
        }
        span.arg("latency_cycles",
                 static_cast<std::int64_t>(c.report.latencyCycles));
        if (opt_.verifyEachPoint) {
            check::OracleOptions oracle;
            oracle.seed = opt_.verifySeed;
            check::OracleResult res =
                check::checkLowered(func_, c.design, oracle);
            if (!res.equivalent)
                support::fatal("DSE produced a non-equivalent design "
                               "point:\n" +
                               res.message);
            ++verified_;
        }
        return c;
    }

    dsl::Function &func_;
    DseOptions opt_;
    hls::Device device_;
    std::string funcDigest_;
    std::mutex unitMemoMutex_;
    std::map<std::pair<size_t, std::int64_t>,
             std::shared_ptr<const UnitSchedule>>
        unitMemo_;
    int points_ = 0;
    int verified_ = 0;
    std::vector<obs::JournalEntry> journal_;
    ParetoFrontier frontier_;
    std::vector<obs::FrontierRound> frontierRounds_;
};

} // namespace

DseResult
autoDSE(dsl::Function &func, const DseOptions &options)
{
    Engine engine(func, options);
    DseResult result = engine.run();
    if (obs::journalEnabled())
        obs::journal().record(result.journal);
    return result;
}

ReplayResult
replayPoint(dsl::Function &func,
            const std::vector<obs::JournalEntry> &journal, int point,
            const DseOptions &options)
{
    const obs::JournalEntry *entry = nullptr;
    for (const auto &e : journal) {
        if (e.kind == "point" && e.point == point)
            entry = &e;
    }
    if (entry == nullptr) {
        support::fatal("replay: the journal has no design point " +
                       std::to_string(point));
    }
    Engine engine(func, options);
    return engine.replay(*entry);
}

} // namespace pom::dse
