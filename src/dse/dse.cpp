#include "dse/dse.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>

#include "check/oracle.h"
#include "graph/dependence_graph.h"
#include "hls/count.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "support/diagnostics.h"

namespace pom::dse {

using graph::DependenceGraph;
using graph::Hint;
using transform::PolyStmt;

double
DseResult::speedup() const
{
    return report.speedupOver(baseline);
}

namespace {

/** A fused optimization unit: statements sharing a top-level nest. */
struct Unit
{
    std::vector<size_t> members; ///< indices into the statement vector
    std::int64_t degree = 1;
    bool open = true;
};

std::string
hintKey(const Hint &h)
{
    return std::to_string(static_cast<int>(h.kind)) + ":" +
           std::to_string(h.fromLevel) + ":" + std::to_string(h.toLevel);
}

/** Number of leading schedule levels all members share. */
size_t
sharedDepth(const std::vector<PolyStmt> &stmts,
            const std::vector<size_t> &members)
{
    if (members.size() < 2)
        return 0;
    size_t depth = SIZE_MAX;
    const auto &first = stmts[members[0]].sched.betas;
    for (size_t m = 1; m < members.size(); ++m) {
        const auto &other = stmts[members[m]].sched.betas;
        size_t common = 0;
        size_t limit = std::min(first.size(), other.size());
        while (common < limit && first[common] == other[common])
            ++common;
        depth = std::min(depth, common);
    }
    return depth == SIZE_MAX ? 0 : depth;
}

/** Group statements by their top-level beta coordinate. */
std::vector<Unit>
groupUnits(const std::vector<PolyStmt> &stmts)
{
    std::map<std::int64_t, Unit> by_beta;
    for (size_t i = 0; i < stmts.size(); ++i)
        by_beta[stmts[i].sched.betas[0]].members.push_back(i);
    std::vector<Unit> units;
    for (auto &[beta, unit] : by_beta)
        units.push_back(std::move(unit));
    return units;
}

bool
anyProducerRelation(const std::vector<PolyStmt> &stmts,
                    const std::vector<size_t> &members)
{
    for (size_t a : members) {
        for (size_t b : members) {
            if (a == b)
                continue;
            if (poly::producesFor(stmts[a].accesses, stmts[b].accesses))
                return true;
        }
    }
    return false;
}

/** Per-level loop-carried flags of a statement. */
std::vector<bool>
carriedLevels(const PolyStmt &stmt)
{
    std::vector<bool> carried(stmt.numDims(), false);
    for (const auto &d : transform::selfDependences(stmt))
        carried[d.level] = true;
    return carried;
}

} // namespace

void
applyParallelSchedule(PolyStmt &stmt, std::int64_t degree,
                      std::int64_t inner_cap, const dsl::Function &func,
                      std::map<std::string, std::vector<std::int64_t>>
                          &partitions, size_t min_level,
                      bool ignore_carried)
{
    size_t n = stmt.numDims();
    auto carried = carriedLevels(stmt);
    if (ignore_carried)
        carried.assign(n, false);
    auto trips = hls::avgTrips(stmt.sched.domain);

    int inner = -1;
    for (int l = static_cast<int>(n) - 1;
         l >= static_cast<int>(min_level); --l) {
        if (!carried[l]) {
            inner = l;
            break;
        }
    }
    if (inner < 0 || degree == 1) {
        transform::setPipeline(stmt, stmt.sched.domain.dimName(n - 1), 1);
        return;
    }
    int outer = (inner > static_cast<int>(min_level) &&
                 !carried[inner - 1])
                    ? inner - 1
                    : -1;

    std::int64_t f_inner = std::min({degree, inner_cap, trips[inner]});
    std::int64_t f_outer = 1;
    if (outer >= 0 && f_inner < degree) {
        f_outer = std::min(degree / std::max<std::int64_t>(1, f_inner),
                           trips[outer]);
    }

    std::string inner_name = stmt.sched.domain.dimName(inner);
    std::string outer_name =
        outer >= 0 ? stmt.sched.domain.dimName(outer) : "";

    std::vector<std::string> unrolled;
    std::string pipeline_at;

    if (f_inner >= trips[inner]) {
        transform::setUnroll(stmt, inner_name, 0);
        unrolled.push_back(inner_name);
    } else {
        transform::split(stmt, inner_name, f_inner, inner_name + "_o",
                         inner_name + "_i");
        transform::setUnroll(stmt, inner_name + "_i", 0);
        unrolled.push_back(inner_name + "_i");
        pipeline_at = inner_name + "_o";
    }

    if (f_outer > 1) {
        if (f_outer >= trips[outer]) {
            transform::setUnroll(stmt, outer_name, 0);
            unrolled.push_back(outer_name);
        } else {
            transform::split(stmt, outer_name, f_outer, outer_name + "_o",
                             outer_name + "_i");
            transform::setUnroll(stmt, outer_name + "_i", 0);
            unrolled.push_back(outer_name + "_i");
            // Point loops innermost (the Fig. 6 tile order).
            if (!pipeline_at.empty()) {
                transform::interchange(stmt, outer_name + "_i",
                                       pipeline_at);
            }
        }
    }

    if (pipeline_at.empty()) {
        // The free levels were fully unrolled without a split. Pipeline
        // the loop just below the deepest unrolled level so that any
        // remaining (reduction) loops flatten into the pipeline; if the
        // unrolled block reaches the innermost level, fall back to the
        // innermost non-unrolled loop above it.
        auto is_unrolled = [&](const std::string &name) {
            return std::find(unrolled.begin(), unrolled.end(), name) !=
                   unrolled.end();
        };
        int deepest = -1;
        for (const std::string &u : unrolled) {
            deepest = std::max(deepest,
                               static_cast<int>(stmt.dimIndex(u)));
        }
        if (deepest >= 0 &&
            deepest + 1 < static_cast<int>(stmt.numDims())) {
            pipeline_at = stmt.sched.domain.dimName(deepest + 1);
        } else {
            for (int l = static_cast<int>(stmt.numDims()) - 1; l >= 0;
                 --l) {
                std::string name = stmt.sched.domain.dimName(l);
                if (!is_unrolled(name)) {
                    pipeline_at = name;
                    break;
                }
            }
        }
    }
    if (!pipeline_at.empty())
        transform::setPipeline(stmt, pipeline_at, 1);

    auto accesses = stmt.transformedAccesses();
    auto final_trips = hls::avgTrips(stmt.sched.domain);
    for (const std::string &uname : unrolled) {
        size_t udim = stmt.dimIndex(uname);
        std::int64_t copies = final_trips[udim];
        for (const auto &acc : accesses) {
            const dsl::Placeholder *p = func.findPlaceholder(acc.array);
            POM_ASSERT(p != nullptr, "unknown array in DSE");
            auto &factors = partitions[acc.array];
            factors.resize(p->shape().size(), 1);
            for (size_t r = 0; r < acc.map.numResults(); ++r) {
                if (acc.map.result(r).coeff(udim) == 0)
                    continue;
                std::int64_t f =
                    std::min<std::int64_t>(copies, p->shape()[r]);
                factors[r] = std::max(factors[r], f);
            }
        }
    }
}

void
applyPartitions(dsl::Function &func,
                const std::map<std::string, std::vector<std::int64_t>>
                    &partitions)
{
    for (const dsl::Placeholder *p : func.placeholders()) {
        dsl::Placeholder *mp = func.findPlaceholderMut(p->name());
        auto it = partitions.find(p->name());
        if (it == partitions.end()) {
            mp->clearPartition();
            continue;
        }
        bool any = false;
        for (auto f : it->second)
            any |= f > 1;
        if (any)
            mp->partition(it->second, "cyclic");
        else
            mp->clearPartition();
    }
}

namespace {

class Engine
{
  public:
    Engine(dsl::Function &func, const DseOptions &options)
        : func_(func), opt_(options),
          device_(options.device.scaled(options.resourceFraction))
    {}

    DseResult
    run()
    {
        obs::Span span("dse.autoDSE", "dse");
        auto t0 = std::chrono::steady_clock::now();
        DseResult result;

        // Baseline: the unscheduled program.
        {
            obs::Span baseline_span("dse.baseline", "dse");
            auto base_stmts = lower::extractStmts(func_);
            lower::applyDirectives(base_stmts, /*ordering_only=*/true);
            auto plain = lower::lowerStmts(func_, std::move(base_stmts));
            result.baseline = hls::estimate(func_, plain, estOptions());
            recordPoint("baseline", "(unscheduled)", result.baseline,
                        "info", "unoptimized reference design");
        }

        std::vector<PolyStmt> stmts = lower::extractStmts(func_);
        if (opt_.applyUserDirectives)
            lower::applyDirectives(stmts);

        {
            obs::Span stage1_span("dse.stage1", "dse");
            stage1(stmts, result.log);
        }
        {
            obs::Span stage2_span("dse.stage2", "dse");
            stage2(stmts, result);
        }

        auto t1 = std::chrono::steady_clock::now();
        result.dseSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        result.pointsExplored = points_;
        result.pointsVerified = verified_;
        result.journal = std::move(journal_);
        span.arg("points_explored", static_cast<std::int64_t>(points_));
        return result;
    }

  private:
    hls::EstimatorOptions
    estOptions() const
    {
        hls::EstimatorOptions eo;
        eo.device = device_;
        eo.sharing = opt_.sharing;
        return eo;
    }

    // ----- search journal -----------------------------------------------

    /** Journal one explored design point with its verdict. */
    void
    recordPoint(const std::string &phase, const std::string &primitives,
                const hls::SynthesisReport &report,
                const std::string &verdict, const std::string &reason)
    {
        obs::JournalEntry e;
        e.kind = "point";
        e.phase = phase;
        e.point = points_;
        e.primitives = primitives;
        e.latencyCycles = report.latencyCycles;
        e.dsp = report.resources.dsp;
        e.bramBits = report.resources.bramBits;
        e.lut = report.resources.lut;
        e.ff = report.resources.ff;
        e.verdict = verdict;
        e.reason = reason;
        journal_.push_back(std::move(e));
    }

    /** Journal a search decision and mirror it into the text log. */
    void
    note(const char *kind, const char *phase, const std::string &detail,
         std::vector<std::string> &log)
    {
        log.push_back(detail);
        support::diag(support::DiagLevel::Debug, detail);
        obs::JournalEntry e;
        e.kind = kind;
        e.phase = phase;
        e.detail = detail;
        journal_.push_back(std::move(e));
    }

    // ----- Stage 1: dependence-aware code transformation ----------------

    void
    stage1(std::vector<PolyStmt> &stmts, std::vector<std::string> &log)
    {
        // Remember the original top-level grouping for re-fusion.
        std::map<size_t, std::int64_t> orig_group;
        for (size_t i = 0; i < stmts.size(); ++i)
            orig_group[i] = stmts[i].sched.betas[0];

        DependenceGraph graph(stmts);
        int skew_counter = 0;
        for (int iter = 0; iter < opt_.maxStage1Iterations; ++iter) {
            graph.refresh(stmts);
            bool changed = false;

            // Resolve conflicting strategies inside fused nests by
            // splitting the nest (Fig. 10 step 1).
            auto units = groupUnits(stmts);
            for (const auto &unit : units) {
                if (unit.members.size() < 2)
                    continue;
                std::set<std::string> keys;
                for (size_t m : unit.members)
                    keys.insert(hintKey(graph.suggest(m)));
                if (keys.size() < 2)
                    continue;
                if (anyProducerRelation(stmts, unit.members)) {
                    note("stage1", "stage1",
                         "stage1: conflicting hints in fused nest "
                         "but distribution is illegal; skipping", log);
                    continue;
                }
                std::int64_t next_beta = maxBeta(stmts) + 16;
                for (size_t m = 1; m < unit.members.size(); ++m) {
                    stmts[unit.members[m]].sched.betas[0] = next_beta;
                    next_beta += 16;
                }
                note("stage1", "stage1",
                     "stage1: split fused nest to resolve "
                     "conflicting transformation strategies", log);
                changed = true;
            }
            if (changed) {
                continue; // re-analyze with the new grouping
            }

            // Apply per-statement hints. Members of a (still) fused nest
            // have identical hints here; apply positionally to each.
            units = groupUnits(stmts);
            for (const auto &unit : units) {
                size_t shared = sharedDepth(stmts, unit.members);
                Hint hint = graph.suggest(unit.members[0]);
                if (unit.members.size() > 1) {
                    std::set<std::string> keys;
                    for (size_t m : unit.members)
                        keys.insert(hintKey(graph.suggest(m)));
                    if (keys.size() > 1) {
                        // Conflicting hints survive only when the nest
                        // could not be distributed (producer relation).
                        note("stage1", "stage1",
                             "stage1: conflicting hints in an "
                             "undistributable nest; skipping", log);
                        continue;
                    }
                    // Identical hints: applying the same transform to
                    // every member keeps bounds equal. Touching shared
                    // levels is only safe when no data flows between
                    // the members (a common permutation preserves
                    // aligned cross dependences).
                    if (hint.kind != Hint::Kind::None &&
                        hint.fromLevel < shared &&
                        anyProducerRelation(stmts, unit.members)) {
                        note("stage1", "stage1",
                             "stage1: hint touches a shared loop "
                             "of a producer/consumer nest; skipping", log);
                        continue;
                    }
                }
                for (size_t m : unit.members) {
                    PolyStmt &stmt = stmts[m];
                    Hint h = graph.suggest(m);
                    if (h.kind == Hint::Kind::Interchange) {
                        transform::interchange(
                            stmt, stmt.sched.domain.dimName(h.fromLevel),
                            stmt.sched.domain.dimName(h.toLevel));
                        note("stage1", "stage1",
                             "stage1: interchange " + stmt.sched.name,
                             log);
                        changed = true;
                    } else if (h.kind == Hint::Kind::Skew) {
                        size_t n = stmt.numDims();
                        std::string outer = stmt.sched.domain.dimName(n - 2);
                        std::string inner = stmt.sched.domain.dimName(n - 1);
                        std::string fresh =
                            inner + "_sk" + std::to_string(skew_counter++);
                        transform::skew(stmt, outer, inner, 1, outer,
                                        fresh);
                        note("stage1", "stage1",
                             "stage1: skew " + stmt.sched.name, log);
                        changed = true;
                    }
                }
            }
            if (!changed)
                break;
        }

        refuse(stmts, orig_group, log);
    }

    static std::int64_t
    maxBeta(const std::vector<PolyStmt> &stmts)
    {
        std::int64_t m = 0;
        for (const auto &s : stmts)
            m = std::max(m, s.sched.betas[0]);
        return m;
    }

    /** Conservative re-fusion of previously split nests (Fig. 10 (3)). */
    void
    refuse(std::vector<PolyStmt> &stmts,
           const std::map<size_t, std::int64_t> &orig_group,
           std::vector<std::string> &log)
    {
        for (size_t a = 0; a < stmts.size(); ++a) {
            for (size_t b = a + 1; b < stmts.size(); ++b) {
                if (orig_group.at(a) != orig_group.at(b))
                    continue; // were never fused
                if (stmts[a].sched.betas[0] == stmts[b].sched.betas[0])
                    continue; // still fused
                if (stmts[a].numDims() != stmts[b].numDims())
                    continue;
                if (poly::producesFor(stmts[a].accesses,
                                      stmts[b].accesses) ||
                    poly::producesFor(stmts[b].accesses,
                                      stmts[a].accesses)) {
                    continue; // data flows between them: stay split
                }
                bool bounds_match = true;
                for (size_t l = 0; l < stmts[a].numDims(); ++l) {
                    if (!(stmts[a].sched.domain.boundsForCodegen(l) ==
                          stmts[b].sched.domain.boundsForCodegen(l))) {
                        bounds_match = false;
                        break;
                    }
                }
                if (!bounds_match)
                    continue;
                transform::fuseInto(stmts[b], stmts[a]);
                note("stage1", "stage1",
                     "stage1: conservatively re-fused " +
                         stmts[a].sched.name + " and " +
                         stmts[b].sched.name, log);
            }
        }
    }

    // ----- Stage 2: bottleneck-oriented code optimization ---------------

    void
    stage2(const std::vector<PolyStmt> &base, DseResult &result)
    {
        auto units = groupUnits(base);
        for (auto &u : units)
            u.degree = 1;

        // Evaluate the initial (pipeline-only) design.
        Candidate best = makeCandidate(base, units);
        recordPoint("stage2-init", best.primitives, best.report,
                    "accepted", "initial pipeline-only design");
        result.log.push_back("stage2: initial design " +
                             best.report.str(device_));

        while (true) {
            // Bottleneck: the open unit whose nest dominates latency.
            int bottleneck = -1;
            std::uint64_t worst = 0;
            for (size_t ui = 0; ui < units.size(); ++ui) {
                if (!units[ui].open)
                    continue;
                std::uint64_t lat =
                    unitLatency(best.report, base, units[ui]);
                if (bottleneck < 0 || lat > worst) {
                    bottleneck = static_cast<int>(ui);
                    worst = lat;
                }
            }
            if (bottleneck < 0)
                break; // optimization list is empty

            Unit &unit = units[bottleneck];
            {
                obs::JournalEntry e;
                e.kind = "bottleneck";
                e.phase = "stage2";
                e.detail = "selected " + unitNames(base, unit) +
                           " as bottleneck";
                e.latencyCycles = worst;
                e.verdict = "info";
                e.reason = "largest nest latency among open units";
                journal_.push_back(std::move(e));
            }
            std::int64_t next = unit.degree * 2;
            if (next > opt_.maxParallelism ||
                next > maxDegreeOf(base, unit)) {
                unit.open = false; // exit mechanism: max parallelism
                note("bottleneck", "stage2",
                     "stage2: unit reached max parallelism, removed",
                     result.log);
                continue;
            }

            std::int64_t saved = unit.degree;
            unit.degree = next;
            Candidate trial = makeCandidate(base, units);
            if (!trial.report.resources.fitsIn(device_)) {
                recordPoint("stage2", trial.primitives, trial.report,
                            "rejected", "exceeds resource budget");
                unit.degree = saved;
                unit.open = false; // exit mechanism: resource bound
                result.log.push_back(
                    "stage2: unit exceeds resource budget, removed");
                continue;
            }
            if (trial.report.latencyCycles >= best.report.latencyCycles) {
                recordPoint("stage2", trial.primitives, trial.report,
                            "rejected", "no latency improvement");
                unit.degree = saved;
                unit.open = false;
                result.log.push_back(
                    "stage2: no latency improvement, removed");
                continue;
            }
            best = std::move(trial);
            recordPoint("stage2", best.primitives, best.report,
                        "accepted", "latency improved");
            result.log.push_back(
                "stage2: parallelism " + std::to_string(next) + " -> " +
                best.report.str(device_));
        }

        // Materialize the winning design (also rewrites partitions).
        best = makeCandidate(base, units);
        recordPoint("final", best.primitives, best.report, "accepted",
                    "selected design");
        result.design = std::move(best.design);
        result.report = std::move(best.report);
        for (const auto &u : units) {
            for (size_t m : u.members) {
                result.parallelism.emplace_back(base[m].sched.name,
                                                u.degree);
            }
        }
    }

    struct Candidate
    {
        lower::LoweredFunction design;
        hls::SynthesisReport report;
        std::string primitives; ///< journal summary of the schedule
    };

    /** "S0+S1" member list of a unit, for journal messages. */
    static std::string
    unitNames(const std::vector<PolyStmt> &base, const Unit &unit)
    {
        std::string out;
        for (size_t m : unit.members) {
            out += out.empty() ? "" : "+";
            out += base[m].sched.name;
        }
        return out;
    }

    /** Journal summary of the applied primitives of one candidate. */
    static std::string
    primitivesSummary(
        const std::vector<PolyStmt> &base, const std::vector<Unit> &units,
        const std::map<std::string, std::vector<std::int64_t>> &partitions)
    {
        std::string out;
        for (const auto &unit : units) {
            for (size_t m : unit.members) {
                out += out.empty() ? "" : ", ";
                out += base[m].sched.name + ":degree=" +
                       std::to_string(unit.degree);
            }
        }
        for (const auto &[array, factors] : partitions) {
            bool any = false;
            for (auto f : factors)
                any |= f > 1;
            if (!any)
                continue;
            out += "; partition " + array + "=[";
            for (size_t i = 0; i < factors.size(); ++i) {
                if (i)
                    out += ",";
                out += std::to_string(factors[i]);
            }
            out += "]:cyclic";
        }
        return out;
    }

    /** Latency attributed to a unit in the last report. */
    static std::uint64_t
    unitLatency(const hls::SynthesisReport &report,
                const std::vector<PolyStmt> &base, const Unit &unit)
    {
        std::uint64_t lat = 0;
        for (size_t m : unit.members) {
            const std::string &name = base[m].sched.name;
            for (const auto &[nest, cycles] : report.nestLatencies) {
                if (nest == name)
                    lat = std::max(lat, cycles);
            }
        }
        return lat;
    }

    /** Product of free-level trip counts bounds the parallelism. */
    std::int64_t
    maxDegreeOf(const std::vector<PolyStmt> &base, const Unit &unit) const
    {
        std::int64_t cap = INT64_MAX;
        for (size_t m : unit.members) {
            const PolyStmt &stmt = base[m];
            auto carried = carriedLevels(stmt);
            auto trips = hls::avgTrips(stmt.sched.domain);
            std::int64_t product = 1;
            for (size_t l = 0; l < stmt.numDims(); ++l) {
                if (!carried[l])
                    product *= trips[l];
            }
            cap = std::min(cap, product);
        }
        return std::max<std::int64_t>(1, cap);
    }

    /** Apply unit degrees to fresh statements, lower and estimate. */
    Candidate
    makeCandidate(const std::vector<PolyStmt> &base,
                  const std::vector<Unit> &units)
    {
        obs::Span span("dse.point", "dse");
        std::vector<PolyStmt> stmts = base;
        std::map<std::string, std::vector<std::int64_t>> partitions;
        for (const auto &unit : units) {
            size_t min_level = 0;
            if (unit.members.size() > 1 &&
                anyProducerRelation(stmts, unit.members)) {
                min_level = sharedDepth(stmts, unit.members);
            }
            for (size_t m : unit.members) {
                applyParallelSchedule(stmts[m], unit.degree,
                                      opt_.innerUnrollCap, func_,
                                      partitions, min_level);
            }
        }
        applyPartitions(func_, partitions);

        Candidate c;
        c.primitives = primitivesSummary(base, units, partitions);
        c.design = lower::lowerStmts(func_, std::move(stmts));
        c.report = hls::estimate(func_, c.design, estOptions());
        ++points_;
        span.arg("point", static_cast<std::int64_t>(points_));
        span.arg("primitives", c.primitives);
        span.arg("latency_cycles",
                 static_cast<std::int64_t>(c.report.latencyCycles));
        if (opt_.verifyEachPoint) {
            check::OracleOptions oracle;
            oracle.seed = opt_.verifySeed;
            check::OracleResult res =
                check::checkLowered(func_, c.design, oracle);
            if (!res.equivalent)
                support::fatal("DSE produced a non-equivalent design "
                               "point:\n" +
                               res.message);
            ++verified_;
        }
        return c;
    }

    dsl::Function &func_;
    DseOptions opt_;
    hls::Device device_;
    int points_ = 0;
    int verified_ = 0;
    std::vector<obs::JournalEntry> journal_;
};

} // namespace

DseResult
autoDSE(dsl::Function &func, const DseOptions &options)
{
    Engine engine(func, options);
    DseResult result = engine.run();
    if (obs::journalEnabled())
        obs::journal().record(result.journal);
    return result;
}

} // namespace pom::dse
