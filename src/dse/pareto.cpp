#include "dse/pareto.h"

#include <algorithm>
#include <tuple>

namespace pom::dse {

namespace {

/** Canonical sort key: objectives lexicographically, then primitives.
 *  The point id is deliberately excluded -- it numbers the estimation
 *  order, which must not influence the canonical set order. */
auto
key(const FrontierPoint &p)
{
    return std::tie(p.latencyCycles, p.dsp, p.bramBits, p.lut,
                    p.primitives);
}

bool
sameObjectives(const FrontierPoint &a, const FrontierPoint &b)
{
    return a.latencyCycles == b.latencyCycles && a.dsp == b.dsp &&
           a.bramBits == b.bramBits && a.lut == b.lut;
}

} // namespace

bool
dominates(const FrontierPoint &a, const FrontierPoint &b)
{
    if (a.latencyCycles > b.latencyCycles || a.dsp > b.dsp ||
        a.bramBits > b.bramBits || a.lut > b.lut) {
        return false;
    }
    return a.latencyCycles < b.latencyCycles || a.dsp < b.dsp ||
           a.bramBits < b.bramBits || a.lut < b.lut;
}

ParetoFrontier::Insert
ParetoFrontier::insert(const FrontierPoint &p)
{
    for (const FrontierPoint &m : points_) {
        if (dominates(m, p))
            return Insert::Dominated;
        if (sameObjectives(m, p) && m.primitives == p.primitives)
            return Insert::Duplicate;
    }
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&p](const FrontierPoint &m) {
                                     return dominates(p, m);
                                 }),
                  points_.end());
    points_.insert(std::upper_bound(points_.begin(), points_.end(), p,
                                    [](const FrontierPoint &a,
                                       const FrontierPoint &b) {
                                        return key(a) < key(b);
                                    }),
                  p);
    return Insert::Added;
}

} // namespace pom::dse
