#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/json.h"

namespace pom::obs {

namespace {

/** %.17g round-trips doubles exactly through json()/fromJson(). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

Histogram::Histogram(const Histogram &other)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    buckets_ = other.buckets_;
    count_ = other.count_;
    min_ = other.min_;
    max_ = other.max_;
    sum_ = other.sum_;
}

Histogram &
Histogram::operator=(const Histogram &other)
{
    if (this == &other)
        return *this;
    // Consistent order via std::lock avoids ABBA between two copies.
    std::unique_lock<std::mutex> self(mutex_, std::defer_lock);
    std::unique_lock<std::mutex> rhs(other.mutex_, std::defer_lock);
    std::lock(self, rhs);
    buckets_ = other.buckets_;
    count_ = other.count_;
    min_ = other.min_;
    max_ = other.max_;
    sum_ = other.sum_;
    return *this;
}

int
Histogram::bucketIndex(double value)
{
    if (!(value > 0.0) || std::isnan(value))
        return 0; // underflow: zero, negatives, NaN
    double log2v = std::log2(value);
    double step = (log2v - kMinExponent) * kBucketsPerOctave;
    if (step < 0.0)
        return 0;
    // +1: index 0 is the underflow bucket.
    int index = static_cast<int>(step) + 1;
    if (index >= kNumBuckets - 1)
        return kNumBuckets - 1; // overflow
    return index;
}

double
Histogram::bucketLower(int index)
{
    if (index <= 0)
        return 0.0;
    return std::exp2(kMinExponent +
                     static_cast<double>(index - 1) / kBucketsPerOctave);
}

double
Histogram::bucketUpper(int index)
{
    if (index >= kNumBuckets - 1)
        return std::exp2(static_cast<double>(kMaxExponent));
    return std::exp2(kMinExponent +
                     static_cast<double>(index) / kBucketsPerOctave);
}

void
Histogram::record(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++buckets_[static_cast<std::size_t>(bucketIndex(value))];
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

void
Histogram::merge(const Histogram &other)
{
    if (this == &other)
        return;
    // Snapshot the source first so self/other lock order cannot ABBA.
    Histogram copy(other);
    std::lock_guard<std::mutex> lock(mutex_);
    for (int i = 0; i < kNumBuckets; ++i)
        buckets_[static_cast<std::size_t>(i)] +=
            copy.buckets_[static_cast<std::size_t>(i)];
    if (copy.count_ > 0) {
        if (count_ == 0) {
            min_ = copy.min_;
            max_ = copy.max_;
        } else {
            min_ = std::min(min_, copy.min_);
            max_ = std::max(max_, copy.max_);
        }
        count_ += copy.count_;
        sum_ += copy.sum_;
    }
}

void
Histogram::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_.fill(0);
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
    sum_ = 0.0;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::percentileLocked(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // The 1-based rank of the requested sample (nearest-rank method).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen >= rank) {
            double lo = bucketLower(i);
            double hi = bucketUpper(i);
            double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

HistogramSummary
Histogram::summaryLocked() const
{
    HistogramSummary s;
    s.count = count_;
    s.min = min_;
    s.max = max_;
    s.sum = sum_;
    s.p50 = percentileLocked(0.50);
    s.p90 = percentileLocked(0.90);
    s.p99 = percentileLocked(0.99);
    return s;
}

HistogramSummary
Histogram::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summaryLocked();
}

double
Histogram::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return percentileLocked(p);
}

std::vector<std::pair<int, std::uint64_t>>
Histogram::nonzeroBuckets() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<int, std::uint64_t>> out;
    for (int i = 0; i < kNumBuckets; ++i) {
        if (buckets_[static_cast<std::size_t>(i)] > 0)
            out.emplace_back(i, buckets_[static_cast<std::size_t>(i)]);
    }
    return out;
}

std::string
Histogram::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HistogramSummary s = summaryLocked();
    std::ostringstream os;
    os << "{\"count\": " << s.count << ", \"min\": " << num(s.min)
       << ", \"max\": " << num(s.max) << ", \"sum\": " << num(s.sum)
       << ", \"p50\": " << num(s.p50) << ", \"p90\": " << num(s.p90)
       << ", \"p99\": " << num(s.p99) << ", \"buckets\": [";
    bool first = true;
    for (int i = 0; i < kNumBuckets; ++i) {
        std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
        if (c == 0)
            continue;
        os << (first ? "" : ", ") << "[" << i << ", " << c << "]";
        first = false;
    }
    os << "]}";
    return os.str();
}

bool
Histogram::fromJson(const std::string &text, Histogram &out,
                    std::string &error)
{
    out.clear();
    support::JsonValue doc;
    if (!support::parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "histogram is not a JSON object";
        return false;
    }
    std::lock_guard<std::mutex> lock(out.mutex_);
    if (const auto *v = doc.find("count"))
        out.count_ = static_cast<std::uint64_t>(v->asInt());
    if (const auto *v = doc.find("min"))
        out.min_ = v->asDouble();
    if (const auto *v = doc.find("max"))
        out.max_ = v->asDouble();
    if (const auto *v = doc.find("sum"))
        out.sum_ = v->asDouble();
    const support::JsonValue *buckets = doc.find("buckets");
    if (buckets == nullptr ||
        buckets->kind != support::JsonValue::Kind::Array) {
        error = "histogram has no buckets array";
        return false;
    }
    std::uint64_t total = 0;
    for (const auto &pair : buckets->items) {
        if (pair.kind != support::JsonValue::Kind::Array ||
            pair.items.size() != 2) {
            error = "bucket entry is not an [index, count] pair";
            return false;
        }
        std::int64_t index = pair.items[0].asInt(-1);
        std::int64_t count = pair.items[1].asInt(-1);
        if (index < 0 || index >= kNumBuckets || count < 0) {
            error = "bucket entry out of range";
            return false;
        }
        out.buckets_[static_cast<std::size_t>(index)] +=
            static_cast<std::uint64_t>(count);
        total += static_cast<std::uint64_t>(count);
    }
    if (total != out.count_) {
        error = "bucket counts disagree with the sample count";
        return false;
    }
    return true;
}

} // namespace pom::obs
