#include "obs/journal.h"

#include <atomic>
#include <limits>
#include <sstream>

#include "obs/obs.h"

namespace pom::obs {

namespace {

std::atomic<bool> g_journal{false};

/**
 * A minimal recursive-descent scanner for the journal's JSON subset:
 * objects, arrays, strings (journalJson's escapes), integers, and the
 * literals true/false/null. Values we do not store are still validated
 * and skipped.
 */
class JsonScanner
{
  public:
    JsonScanner(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    size_t pos_ = 0;

    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    parseString(std::string &out)
    {
        out.clear();
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // journalJson only emits \u00XX control codes.
                out += static_cast<char>(v & 0xff);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseInt(std::int64_t &out)
    {
        skipSpace();
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected an integer");
        // Overflow-checked accumulation: a hostile or corrupted file
        // must produce a diagnostic, not signed-overflow UB.
        out = 0;
        bool negative = text_[start] == '-';
        constexpr std::int64_t kMax =
            std::numeric_limits<std::int64_t>::max();
        for (size_t i = start + (negative ? 1 : 0); i < pos_; ++i) {
            int digit = text_[i] - '0';
            if (out > (kMax - digit) / 10) {
                pos_ = start;
                return fail("integer out of range");
            }
            out = out * 10 + digit;
        }
        if (negative)
            out = -out;
        return true;
    }

    /** Validate and discard any value (for unknown keys). Nesting is
     *  depth-limited so a pathological input exhausts the limit, not
     *  the call stack. */
    bool
    skipValue(int depth = 0)
    {
        if (depth > kMaxSkipDepth)
            return fail("value nested too deeply");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("expected a value");
        char c = text_[pos_];
        if (c == '"') {
            std::string s;
            return parseString(s);
        }
        if (c == '{' || c == '[') {
            char close = c == '{' ? '}' : ']';
            ++pos_;
            skipSpace();
            if (peek(close)) {
                ++pos_;
                return true;
            }
            while (true) {
                if (c == '{') {
                    std::string key;
                    if (!parseString(key) || !consume(':'))
                        return false;
                }
                if (!skipValue(depth + 1))
                    return false;
                skipSpace();
                if (peek(',')) {
                    ++pos_;
                    continue;
                }
                return consume(close);
            }
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            std::int64_t v;
            if (!parseInt(v))
                return false;
            // Accept (and ignore) a fractional / exponent tail.
            while (pos_ < text_.size() &&
                   (text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' || text_[pos_] == '+' ||
                    text_[pos_] == '-' ||
                    (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
                ++pos_;
            }
            return true;
        }
        for (const char *lit : {"true", "false", "null"}) {
            size_t n = std::char_traits<char>::length(lit);
            if (text_.compare(pos_, n, lit) == 0) {
                pos_ += n;
                return true;
            }
        }
        return fail("unrecognized value");
    }

    /** True once the whole input has been consumed (modulo space). */
    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

  private:
    static constexpr int kMaxSkipDepth = 64;

    const std::string &text_;
    std::string &error_;
};

bool
parseJournalEntry(JsonScanner &s, JournalEntry &e)
{
    if (!s.consume('{'))
        return false;
    if (s.peek('}')) {
        ++s.pos_;
        return true;
    }
    while (true) {
        std::string key;
        if (!s.parseString(key) || !s.consume(':'))
            return false;
        bool ok;
        std::int64_t v = 0;
        if (key == "kind") {
            ok = s.parseString(e.kind);
        } else if (key == "phase") {
            ok = s.parseString(e.phase);
        } else if (key == "detail") {
            ok = s.parseString(e.detail);
        } else if (key == "primitives") {
            ok = s.parseString(e.primitives);
        } else if (key == "verdict") {
            ok = s.parseString(e.verdict);
        } else if (key == "reason") {
            ok = s.parseString(e.reason);
        } else if (key == "point") {
            ok = s.parseInt(v);
            e.point = static_cast<int>(v);
        } else if (key == "latency_cycles") {
            ok = s.parseInt(v);
            e.latencyCycles = static_cast<std::uint64_t>(v);
        } else if (key == "dsp") {
            ok = s.parseInt(e.dsp);
        } else if (key == "bram_bits") {
            ok = s.parseInt(e.bramBits);
        } else if (key == "lut") {
            ok = s.parseInt(e.lut);
        } else if (key == "ff") {
            ok = s.parseInt(e.ff);
        } else {
            ok = s.skipValue(); // forward compatibility
        }
        if (!ok)
            return false;
        if (s.peek(',')) {
            ++s.pos_;
            continue;
        }
        return s.consume('}');
    }
}

bool
parseFrontierPoint(JsonScanner &s, FrontierPoint &p)
{
    if (!s.consume('{'))
        return false;
    if (s.peek('}')) {
        ++s.pos_;
        return true;
    }
    while (true) {
        std::string key;
        if (!s.parseString(key) || !s.consume(':'))
            return false;
        bool ok;
        std::int64_t v = 0;
        if (key == "primitives") {
            ok = s.parseString(p.primitives);
        } else if (key == "point") {
            ok = s.parseInt(v);
            p.point = static_cast<int>(v);
        } else if (key == "latency_cycles") {
            ok = s.parseInt(v);
            p.latencyCycles = static_cast<std::uint64_t>(v);
        } else if (key == "dsp") {
            ok = s.parseInt(p.dsp);
        } else if (key == "bram_bits") {
            ok = s.parseInt(p.bramBits);
        } else if (key == "lut") {
            ok = s.parseInt(p.lut);
        } else {
            ok = s.skipValue();
        }
        if (!ok)
            return false;
        if (s.peek(',')) {
            ++s.pos_;
            continue;
        }
        return s.consume('}');
    }
}

bool
parseFrontierRound(JsonScanner &s, FrontierRound &r)
{
    if (!s.consume('{'))
        return false;
    if (s.peek('}')) {
        ++s.pos_;
        return true;
    }
    while (true) {
        std::string key;
        if (!s.parseString(key) || !s.consume(':'))
            return false;
        bool ok = true;
        if (key == "round") {
            std::int64_t v = 0;
            ok = s.parseInt(v);
            r.round = static_cast<int>(v);
        } else if (key == "strategy") {
            ok = s.parseString(r.strategy);
        } else if (key == "points") {
            if (!s.consume('['))
                return false;
            if (s.peek(']')) {
                ++s.pos_;
            } else {
                while (true) {
                    FrontierPoint p;
                    if (!parseFrontierPoint(s, p))
                        return false;
                    r.points.push_back(std::move(p));
                    if (s.peek(',')) {
                        ++s.pos_;
                        continue;
                    }
                    if (!s.consume(']'))
                        return false;
                    break;
                }
            }
        } else {
            ok = s.skipValue();
        }
        if (!ok)
            return false;
        if (s.peek(',')) {
            ++s.pos_;
            continue;
        }
        return s.consume('}');
    }
}

void
appendEvents(std::ostringstream &os,
             const std::vector<JournalEntry> &entries)
{
    os << "\"events\": [";
    bool first = true;
    for (const auto &e : entries) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"kind\": \"" << jsonEscape(e.kind)
           << "\", \"phase\": \"" << jsonEscape(e.phase)
           << "\", \"point\": " << e.point
           << ", \"detail\": \"" << jsonEscape(e.detail)
           << "\", \"primitives\": \"" << jsonEscape(e.primitives)
           << "\", \"latency_cycles\": " << e.latencyCycles
           << ", \"dsp\": " << e.dsp
           << ", \"bram_bits\": " << e.bramBits
           << ", \"lut\": " << e.lut
           << ", \"ff\": " << e.ff
           << ", \"verdict\": \"" << jsonEscape(e.verdict)
           << "\", \"reason\": \"" << jsonEscape(e.reason) << "\"}";
    }
    os << "\n]";
}

} // namespace

std::string
journalJson(const std::vector<JournalEntry> &entries,
            std::int64_t requestId)
{
    std::ostringstream os;
    os << "{\"schema\": \"pom-dse-journal/v1\", ";
    if (requestId >= 0)
        os << "\"request\": " << requestId << ", ";
    appendEvents(os, entries);
    os << "}\n";
    return os.str();
}

std::string
journalJsonV2(const std::vector<JournalEntry> &entries,
              const std::vector<FrontierRound> &rounds,
              std::int64_t requestId)
{
    std::ostringstream os;
    os << "{\"schema\": \"pom-dse-journal/v2\", ";
    if (requestId >= 0)
        os << "\"request\": " << requestId << ", ";
    appendEvents(os, entries);
    os << ",\n\"frontier\": [";
    bool first_round = true;
    for (const auto &r : rounds) {
        if (!first_round)
            os << ",";
        first_round = false;
        os << "\n  {\"round\": " << r.round << ", \"strategy\": \""
           << jsonEscape(r.strategy) << "\", \"points\": [";
        bool first_point = true;
        for (const auto &p : r.points) {
            if (!first_point)
                os << ",";
            first_point = false;
            os << "\n    {\"point\": " << p.point
               << ", \"primitives\": \"" << jsonEscape(p.primitives)
               << "\", \"latency_cycles\": " << p.latencyCycles
               << ", \"dsp\": " << p.dsp
               << ", \"bram_bits\": " << p.bramBits
               << ", \"lut\": " << p.lut << "}";
        }
        os << "\n  ]}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
parseJournalJson(const std::string &text, std::vector<JournalEntry> &out,
                 std::string &error)
{
    std::vector<FrontierRound> rounds;
    return parseJournalJson(text, out, rounds, error);
}

bool
parseJournalJson(const std::string &text, std::vector<JournalEntry> &out,
                 std::vector<FrontierRound> &rounds, std::string &error)
{
    out.clear();
    rounds.clear();
    error.clear();
    JsonScanner s(text, error);
    if (!s.consume('{'))
        return false;
    bool saw_schema = false;
    bool saw_events = false;
    while (true) {
        std::string key;
        if (!s.parseString(key) || !s.consume(':'))
            return false;
        if (key == "schema") {
            std::string schema;
            if (!s.parseString(schema))
                return false;
            if (schema != "pom-dse-journal/v1" &&
                schema != "pom-dse-journal/v2") {
                error = "unsupported schema '" + schema + "'";
                return false;
            }
            saw_schema = true;
        } else if (key == "frontier") {
            if (!s.consume('['))
                return false;
            if (s.peek(']')) {
                ++s.pos_;
            } else {
                while (true) {
                    FrontierRound r;
                    if (!parseFrontierRound(s, r))
                        return false;
                    rounds.push_back(std::move(r));
                    if (s.peek(',')) {
                        ++s.pos_;
                        continue;
                    }
                    if (!s.consume(']'))
                        return false;
                    break;
                }
            }
        } else if (key == "events") {
            if (!s.consume('['))
                return false;
            saw_events = true;
            if (s.peek(']')) {
                ++s.pos_;
            } else {
                while (true) {
                    JournalEntry e;
                    if (!parseJournalEntry(s, e))
                        return false;
                    out.push_back(std::move(e));
                    if (s.peek(',')) {
                        ++s.pos_;
                        continue;
                    }
                    if (!s.consume(']'))
                        return false;
                    break;
                }
            }
        } else if (!s.skipValue()) {
            return false;
        }
        if (s.peek(',')) {
            ++s.pos_;
            continue;
        }
        if (!s.consume('}'))
            return false;
        break;
    }
    if (!saw_schema) {
        error = "missing schema tag";
        return false;
    }
    if (!saw_events) {
        error = "missing events array";
        return false;
    }
    if (!s.atEnd()) {
        error.clear();
        s.fail("trailing garbage after journal document");
        return false;
    }
    return true;
}

void
SearchJournal::record(JournalEntry entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(entry));
}

void
SearchJournal::record(const std::vector<JournalEntry> &entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.insert(entries_.end(), entries.begin(), entries.end());
}

std::vector<JournalEntry>
SearchJournal::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

void
SearchJournal::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

std::string
SearchJournal::json() const
{
    return journalJson(entries());
}

SearchJournal &
journal()
{
    static SearchJournal *instance = new SearchJournal();
    return *instance;
}

void
setJournalEnabled(bool enabled)
{
    g_journal.store(enabled, std::memory_order_relaxed);
}

bool
journalEnabled()
{
    return g_journal.load(std::memory_order_relaxed);
}

} // namespace pom::obs
