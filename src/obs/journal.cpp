#include "obs/journal.h"

#include <atomic>
#include <sstream>

#include "obs/obs.h"

namespace pom::obs {

namespace {

std::atomic<bool> g_journal{false};

} // namespace

std::string
journalJson(const std::vector<JournalEntry> &entries)
{
    std::ostringstream os;
    os << "{\"schema\": \"pom-dse-journal/v1\", \"events\": [";
    bool first = true;
    for (const auto &e : entries) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"kind\": \"" << jsonEscape(e.kind)
           << "\", \"phase\": \"" << jsonEscape(e.phase)
           << "\", \"point\": " << e.point
           << ", \"detail\": \"" << jsonEscape(e.detail)
           << "\", \"primitives\": \"" << jsonEscape(e.primitives)
           << "\", \"latency_cycles\": " << e.latencyCycles
           << ", \"dsp\": " << e.dsp
           << ", \"bram_bits\": " << e.bramBits
           << ", \"lut\": " << e.lut
           << ", \"ff\": " << e.ff
           << ", \"verdict\": \"" << jsonEscape(e.verdict)
           << "\", \"reason\": \"" << jsonEscape(e.reason) << "\"}";
    }
    os << "\n]}\n";
    return os.str();
}

void
SearchJournal::record(JournalEntry entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(std::move(entry));
}

void
SearchJournal::record(const std::vector<JournalEntry> &entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.insert(entries_.end(), entries.begin(), entries.end());
}

std::vector<JournalEntry>
SearchJournal::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

void
SearchJournal::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

std::string
SearchJournal::json() const
{
    return journalJson(entries());
}

SearchJournal &
journal()
{
    static SearchJournal *instance = new SearchJournal();
    return *instance;
}

void
setJournalEnabled(bool enabled)
{
    g_journal.store(enabled, std::memory_order_relaxed);
}

bool
journalEnabled()
{
    return g_journal.load(std::memory_order_relaxed);
}

} // namespace pom::obs
