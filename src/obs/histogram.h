/**
 * @file
 * Fixed-bucket log-scale latency histograms for the performance
 * observability layer. A Histogram is:
 *
 *  - **thread-safe**: record() takes an internal mutex, so request
 *    executors, pass pipelines and DSE workers can feed one instance
 *    concurrently;
 *  - **mergeable**: merge() adds another histogram bucket-by-bucket,
 *    and merging is associative and commutative (bucket counts and the
 *    sample count are exact; min/max combine exactly; the running sum
 *    is a double, so use binary-exact sample values where byte-exact
 *    merges matter);
 *  - **summarizable**: count/min/max/sum plus p50/p90/p99 extracted
 *    from the bucket counts. A percentile falls back to the geometric
 *    midpoint of its bucket, clamped into [min, max], so a
 *    single-sample or single-bucket histogram reports the exact value.
 *
 * Buckets are fixed at construction: kBucketsPerOctave subdivisions
 * per power of two, spanning 2^kMinExponent .. 2^kMaxExponent. Values
 * at or below zero land in the underflow bucket (index 0); values
 * beyond the top boundary land in the overflow bucket. The mapping is
 * value-unit-agnostic -- callers record milliseconds, cycles, or
 * counts as long as one histogram sticks to one unit.
 *
 * JSON: json() emits a self-contained object (summary plus the sparse
 * nonzero bucket list) and fromJson() reconstructs an equivalent
 * histogram, so metrics reports round-trip losslessly.
 */

#ifndef POM_OBS_HISTOGRAM_H
#define POM_OBS_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pom::obs {

/** Snapshot statistics of one histogram. */
struct HistogramSummary
{
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    double
    mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Thread-safe fixed-bucket log-scale histogram. */
class Histogram
{
  public:
    /** Log-scale resolution: 4 buckets per power of two. */
    static constexpr int kBucketsPerOctave = 4;
    /** Smallest finite bucket boundary is 2^kMinExponent. */
    static constexpr int kMinExponent = -32;
    /** Largest finite bucket boundary is 2^kMaxExponent. */
    static constexpr int kMaxExponent = 32;
    /** Bucket 0 = underflow; then one bucket per log step; last =
     *  overflow. */
    static constexpr int kNumBuckets =
        (kMaxExponent - kMinExponent) * kBucketsPerOctave + 2;

    Histogram() = default;
    Histogram(const Histogram &other);
    Histogram &operator=(const Histogram &other);

    /** Record one sample (thread-safe). */
    void record(double value);

    /** Add @p other's samples into this histogram (associative). */
    void merge(const Histogram &other);

    /** Drop all samples. */
    void clear();

    std::uint64_t count() const;

    /** Full snapshot statistics (percentiles included). */
    HistogramSummary summary() const;

    /**
     * The @p p quantile (p in [0, 1]) from the bucket counts: the
     * geometric midpoint of the bucket holding the p-th sample,
     * clamped into [min, max]. 0.0 for an empty histogram.
     */
    double percentile(double p) const;

    /** Sparse (bucketIndex, sampleCount) pairs, ascending index. */
    std::vector<std::pair<int, std::uint64_t>> nonzeroBuckets() const;

    /** Bucket boundaries: samples in bucket i satisfy
     *  bucketLower(i) <= v < bucketUpper(i) (modulo under/overflow). */
    static double bucketLower(int index);
    static double bucketUpper(int index);

    /** The bucket index a value maps to. */
    static int bucketIndex(double value);

    /**
     * Self-contained JSON object: {"count": .., "min": .., "max": ..,
     * "sum": .., "p50": .., "p90": .., "p99": .., "buckets":
     * [[index, count], ...]}.
     */
    std::string json() const;

    /**
     * Rebuild a histogram from json() output. False + @p error on
     * malformed input. Percentiles are recomputed from the buckets,
     * so summary() round-trips exactly.
     */
    static bool fromJson(const std::string &text, Histogram &out,
                         std::string &error);

  private:
    mutable std::mutex mutex_;
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;

    double percentileLocked(double p) const;
    HistogramSummary summaryLocked() const;
};

} // namespace pom::obs

#endif // POM_OBS_HISTOGRAM_H
