/**
 * @file
 * The DSE search journal: a machine-readable record of every decision
 * the two-stage DSE engine makes. One entry per event:
 *
 *  - kind "stage1"     — a dependence-aware transformation decision
 *                        (interchange/skew/split/re-fuse, or why one
 *                        was skipped).
 *  - kind "bottleneck" — a stage-2 bottleneck selection: which unit the
 *                        engine chose to parallelize next and the
 *                        latency that made it the bottleneck.
 *  - kind "point"      — one explored design point: the applied
 *                        primitives, estimated latency, resource usage
 *                        (DSP/BRAM/LUT/FF), and the accept/reject
 *                        verdict with its reason.
 *
 * Every entry serializes with the full fixed key set (schema
 * "pom-dse-journal/v1"), so downstream tooling can load the file
 * without per-kind special cases; tests pin the schema with a golden
 * file. Entries contain no wall-clock values — a journal for a given
 * workload is bit-reproducible.
 *
 * Schema "pom-dse-journal/v2" is a strict superset of v1: the same
 * "events" array (byte-identical records) plus a "frontier" array with
 * one section per stage-2 search round, each holding the Pareto
 * frontier over (latency_cycles, dsp, bram_bits, lut) after that
 * round. v1 documents remain parseable; the parser accepts both.
 */

#ifndef POM_OBS_JOURNAL_H
#define POM_OBS_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pom::obs {

/** One DSE search event. Unused numeric fields stay zero. */
struct JournalEntry
{
    std::string kind;  ///< "stage1" | "bottleneck" | "point"
    std::string phase; ///< "baseline"|"stage1"|"stage2-init"|"stage2"|"final"

    /** Human-readable decision description (stage1/bottleneck). */
    std::string detail;

    /** Design-point index (1-based estimation order); -1 otherwise. */
    int point = -1;

    /** Applied primitives, e.g. "S0:degree=4; partition A=[1,4]:cyclic". */
    std::string primitives;

    // Estimated performance/resources of a design point.
    std::uint64_t latencyCycles = 0;
    std::int64_t dsp = 0;
    std::int64_t bramBits = 0;
    std::int64_t lut = 0;
    std::int64_t ff = 0;

    std::string verdict; ///< "accepted" | "rejected" | "info"
    std::string reason;  ///< why the verdict was reached
};

/**
 * One point on a Pareto frontier snapshot: the journal point id it was
 * estimated as, its primitives summary, and the four objectives the
 * multi-objective DSE minimizes (latency, DSP, BRAM bits, and LUTs as
 * the linear power proxy's dominant resource term).
 */
struct FrontierPoint
{
    int point = -1;
    std::string primitives;
    std::uint64_t latencyCycles = 0;
    std::int64_t dsp = 0;
    std::int64_t bramBits = 0;
    std::int64_t lut = 0;
};

/** The frontier after one stage-2 search round (a v2 journal section). */
struct FrontierRound
{
    int round = 0;        ///< 1-based round counter
    std::string strategy; ///< "greedy" | "beam" | "anneal"
    std::vector<FrontierPoint> points;
};

/**
 * Serialize entries as the pom-dse-journal/v1 JSON document. When
 * @p requestId >= 0 the header gains a `"request": N` key -- the only
 * permitted divergence between daemon-served and one-shot journals
 * (the daemon stamps its monotonic request ID; one-shot runs never
 * stamp, keeping their documents byte-identical across transports).
 */
std::string journalJson(const std::vector<JournalEntry> &entries,
                        std::int64_t requestId = -1);

/**
 * Serialize entries plus per-round frontier snapshots as the
 * pom-dse-journal/v2 JSON document. The "events" array is byte-for-byte
 * what journalJson emits for the same entries. @p requestId behaves as
 * in journalJson.
 */
std::string journalJsonV2(const std::vector<JournalEntry> &entries,
                          const std::vector<FrontierRound> &rounds,
                          std::int64_t requestId = -1);

/**
 * Parse a pom-dse-journal/v1 or /v2 document back into entries (the
 * inverse of journalJson; what `pomc --replay-journal` loads). Unknown
 * keys are ignored so minor-version documents stay readable. Returns
 * false -- with @p error describing the first problem -- on malformed
 * input or a wrong schema tag.
 */
bool parseJournalJson(const std::string &text,
                      std::vector<JournalEntry> &out, std::string &error);

/** As above, additionally capturing the v2 frontier sections (empty
 *  for a v1 document). */
bool parseJournalJson(const std::string &text,
                      std::vector<JournalEntry> &out,
                      std::vector<FrontierRound> &rounds,
                      std::string &error);

/** Thread-safe process-wide journal collector. */
class SearchJournal
{
  public:
    void record(JournalEntry entry);
    void record(const std::vector<JournalEntry> &entries);
    std::vector<JournalEntry> entries() const;
    void clear();

    /** JSON document for the collected entries. */
    std::string json() const;

  private:
    mutable std::mutex mutex_;
    std::vector<JournalEntry> entries_;
};

/** The process-wide journal (what `pomc --dse-journal` exports). */
SearchJournal &journal();

/** Gate for publishing DSE runs into the global journal (off by default). */
void setJournalEnabled(bool enabled);
bool journalEnabled();

} // namespace pom::obs

#endif // POM_OBS_JOURNAL_H
