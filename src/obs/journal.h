/**
 * @file
 * The DSE search journal: a machine-readable record of every decision
 * the two-stage DSE engine makes. One entry per event:
 *
 *  - kind "stage1"     — a dependence-aware transformation decision
 *                        (interchange/skew/split/re-fuse, or why one
 *                        was skipped).
 *  - kind "bottleneck" — a stage-2 bottleneck selection: which unit the
 *                        engine chose to parallelize next and the
 *                        latency that made it the bottleneck.
 *  - kind "point"      — one explored design point: the applied
 *                        primitives, estimated latency, resource usage
 *                        (DSP/BRAM/LUT/FF), and the accept/reject
 *                        verdict with its reason.
 *
 * Every entry serializes with the full fixed key set (schema
 * "pom-dse-journal/v1"), so downstream tooling can load the file
 * without per-kind special cases; tests pin the schema with a golden
 * file. Entries contain no wall-clock values — a journal for a given
 * workload is bit-reproducible.
 */

#ifndef POM_OBS_JOURNAL_H
#define POM_OBS_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pom::obs {

/** One DSE search event. Unused numeric fields stay zero. */
struct JournalEntry
{
    std::string kind;  ///< "stage1" | "bottleneck" | "point"
    std::string phase; ///< "baseline"|"stage1"|"stage2-init"|"stage2"|"final"

    /** Human-readable decision description (stage1/bottleneck). */
    std::string detail;

    /** Design-point index (1-based estimation order); -1 otherwise. */
    int point = -1;

    /** Applied primitives, e.g. "S0:degree=4; partition A=[1,4]:cyclic". */
    std::string primitives;

    // Estimated performance/resources of a design point.
    std::uint64_t latencyCycles = 0;
    std::int64_t dsp = 0;
    std::int64_t bramBits = 0;
    std::int64_t lut = 0;
    std::int64_t ff = 0;

    std::string verdict; ///< "accepted" | "rejected" | "info"
    std::string reason;  ///< why the verdict was reached
};

/** Serialize entries as the pom-dse-journal/v1 JSON document. */
std::string journalJson(const std::vector<JournalEntry> &entries);

/**
 * Parse a pom-dse-journal/v1 document back into entries (the inverse
 * of journalJson; what `pomc --replay-journal` loads). Unknown keys
 * are ignored so minor-version documents stay readable. Returns false
 * -- with @p error describing the first problem -- on malformed input
 * or a wrong schema tag.
 */
bool parseJournalJson(const std::string &text,
                      std::vector<JournalEntry> &out, std::string &error);

/** Thread-safe process-wide journal collector. */
class SearchJournal
{
  public:
    void record(JournalEntry entry);
    void record(const std::vector<JournalEntry> &entries);
    std::vector<JournalEntry> entries() const;
    void clear();

    /** JSON document for the collected entries. */
    std::string json() const;

  private:
    mutable std::mutex mutex_;
    std::vector<JournalEntry> entries_;
};

/** The process-wide journal (what `pomc --dse-journal` exports). */
SearchJournal &journal();

/** Gate for publishing DSE runs into the global journal (off by default). */
void setJournalEnabled(bool enabled);
bool journalEnabled();

} // namespace pom::obs

#endif // POM_OBS_JOURNAL_H
