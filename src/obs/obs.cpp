#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "support/diagnostics.h"

namespace pom::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};

std::chrono::steady_clock::time_point
epoch()
{
    static const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    return t0;
}

/** Span storage and the thread-id registry, one mutex for both. */
struct TraceStore
{
    std::mutex mutex;
    std::vector<SpanEvent> events;
    std::map<std::thread::id, int> threadIds;
    /** tid -> display name, emitted as "thread_name" metadata events. */
    std::map<int, std::string> threadNames;
};

/** OS-level name of the calling thread ("" when unavailable). */
std::string
osThreadName()
{
#if defined(__linux__)
    char buf[32] = {0};
    if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) == 0)
        return buf;
#endif
    return "";
}

TraceStore &
traceStore()
{
    static TraceStore *store = new TraceStore();
    return *store;
}

/** Metric storage: insertion-ordered names + name -> value. */
struct MetricStore
{
    std::mutex mutex;
    std::vector<std::string> order;
    std::map<std::string, Metric> byName;

    Metric &
    get(const std::string &name, Metric::Kind kind)
    {
        auto it = byName.find(name);
        if (it == byName.end()) {
            order.push_back(name);
            it = byName.emplace(name, Metric{kind, 0, 0.0}).first;
        }
        return it->second;
    }
};

MetricStore &
metricStore()
{
    static MetricStore *store = new MetricStore();
    return *store;
}

/**
 * Small per-process index for @p id, assigned on first sight. Callers
 * always pass the *calling* thread's id (spans complete on their owning
 * thread), so first sight is also the one moment we can sample the OS
 * thread name (set by support::ThreadPool) for trace attribution.
 */
int
threadIdOf(std::thread::id id, TraceStore &store)
{
    auto it = store.threadIds.find(id);
    if (it == store.threadIds.end()) {
        int next = static_cast<int>(store.threadIds.size());
        it = store.threadIds.emplace(id, next).first;
        std::string name = osThreadName();
        if (!name.empty())
            store.threadNames[next] = std::move(name);
    }
    return it->second;
}

/**
 * Histogram storage: insertion-ordered names + name -> histogram.
 * Histograms are stored behind unique_ptr so record() can run outside
 * the registry mutex (each Histogram has its own lock) and addresses
 * stay stable across rehashing.
 */
struct HistogramStore
{
    std::mutex mutex;
    std::vector<std::string> order;
    std::map<std::string, std::unique_ptr<Histogram>> byName;

    Histogram &
    get(const std::string &name)
    {
        auto it = byName.find(name);
        if (it == byName.end()) {
            order.push_back(name);
            it = byName.emplace(name, std::make_unique<Histogram>()).first;
        }
        return *it->second;
    }
};

HistogramStore &
histogramStore()
{
    static HistogramStore *store = new HistogramStore();
    return *store;
}

thread_local int t_depth = 0;

} // namespace

// ----- enablement --------------------------------------------------------

void
setTracingEnabled(bool enabled)
{
    // Pin the epoch before the first span so timestamps stay positive.
    epoch();
    g_tracing.store(enabled, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return g_tracing.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool enabled)
{
    g_metrics.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_metrics.load(std::memory_order_relaxed);
}

std::string
traceEnvPath()
{
    const char *env = std::getenv("POM_TRACE");
    if (env == nullptr || env[0] == '\0')
        return "";
    if (std::string(env) == "1")
        return "pom-trace.json";
    return env;
}

double
nowMicros()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch())
        .count();
}

// ----- spans -------------------------------------------------------------

Span::Span(std::string name, std::string category)
{
    active_ = tracingEnabled();
    if (!active_)
        return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.depth = t_depth++;
    event_.requestId = support::currentRequestId();
    event_.startUs = nowMicros();
}

Span::~Span()
{
    if (!active_)
        return;
    event_.durationUs = nowMicros() - event_.startUs;
    --t_depth;
    TraceStore &store = traceStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    event_.threadId = threadIdOf(std::this_thread::get_id(), store);
    store.events.push_back(std::move(event_));
}

void
Span::arg(const std::string &key, const std::string &value)
{
    if (active_)
        event_.args.emplace_back(key, "\"" + jsonEscape(value) + "\"");
}

void
Span::arg(const std::string &key, std::int64_t value)
{
    if (active_)
        event_.args.emplace_back(key, std::to_string(value));
}

void
Span::arg(const std::string &key, double value)
{
    if (!active_)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    event_.args.emplace_back(key, buf);
}

std::vector<SpanEvent>
traceSnapshot()
{
    TraceStore &store = traceStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    return store.events;
}

void
resetTrace()
{
    TraceStore &store = traceStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    store.events.clear();
}

// ----- metrics -----------------------------------------------------------

void
counterAdd(const std::string &name, std::int64_t delta)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    Metric &m = store.get(name, Metric::Kind::Counter);
    m.count += delta;
    m.value = static_cast<double>(m.count);
}

void
accumulate(const std::string &name, double delta)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    Metric &m = store.get(name, Metric::Kind::Accumulator);
    ++m.count;
    m.value += delta;
}

void
gaugeSet(const std::string &name, double value)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    Metric &m = store.get(name, Metric::Kind::Gauge);
    ++m.count;
    m.value = value;
}

std::int64_t
counterValue(const std::string &name)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    auto it = store.byName.find(name);
    return it == store.byName.end() ? 0 : it->second.count;
}

double
metricValue(const std::string &name)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    auto it = store.byName.find(name);
    return it == store.byName.end() ? 0.0 : it->second.value;
}

std::vector<std::pair<std::string, Metric>>
metricsSnapshot()
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    std::vector<std::pair<std::string, Metric>> out;
    out.reserve(store.order.size());
    for (const auto &name : store.order)
        out.emplace_back(name, store.byName.at(name));
    return out;
}

void
resetMetrics()
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    store.order.clear();
    store.byName.clear();
}

void
resetMetricsWithPrefix(const std::string &prefix)
{
    MetricStore &store = metricStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    std::vector<std::string> kept;
    for (const auto &name : store.order) {
        if (name.rfind(prefix, 0) == 0)
            store.byName.erase(name);
        else
            kept.push_back(name);
    }
    store.order = std::move(kept);
}

// ----- histograms --------------------------------------------------------

void
histogramRecord(const std::string &name, double value)
{
    HistogramStore &store = histogramStore();
    Histogram *histogram = nullptr;
    {
        std::lock_guard<std::mutex> lock(store.mutex);
        histogram = &store.get(name);
    }
    histogram->record(value);
}

Histogram
histogramSnapshot(const std::string &name)
{
    HistogramStore &store = histogramStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    auto it = store.byName.find(name);
    return it == store.byName.end() ? Histogram() : *it->second;
}

std::vector<std::pair<std::string, Histogram>>
histogramsSnapshot()
{
    HistogramStore &store = histogramStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    std::vector<std::pair<std::string, Histogram>> out;
    out.reserve(store.order.size());
    for (const auto &name : store.order)
        out.emplace_back(name, *store.byName.at(name));
    return out;
}

void
resetHistograms()
{
    HistogramStore &store = histogramStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    store.order.clear();
    store.byName.clear();
}

void
resetHistogramsWithPrefix(const std::string &prefix)
{
    HistogramStore &store = histogramStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    std::vector<std::string> kept;
    for (const auto &name : store.order) {
        if (name.rfind(prefix, 0) == 0)
            store.byName.erase(name);
        else
            kept.push_back(name);
    }
    store.order = std::move(kept);
}

// ----- thread naming -----------------------------------------------------

void
setCurrentThreadName(const std::string &name)
{
    TraceStore &store = traceStore();
    std::lock_guard<std::mutex> lock(store.mutex);
    int tid = threadIdOf(std::this_thread::get_id(), store);
    store.threadNames[tid] = name;
}

// ----- export ------------------------------------------------------------

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
chromeTraceJson()
{
    std::vector<SpanEvent> events;
    std::map<int, std::string> names;
    {
        TraceStore &store = traceStore();
        std::lock_guard<std::mutex> lock(store.mutex);
        events = store.events;
        names = store.threadNames;
    }
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    char num[64];
    // "M"-phase metadata first: thread names, so chrome://tracing labels
    // each daemon executor / pool worker lane.
    for (const auto &[tid, name] : names) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           << "\"tid\": " << tid << ", \"args\": {\"name\": \""
           << jsonEscape(name) << "\"}}";
    }
    for (const auto &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << jsonEscape(e.category)
           << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.threadId;
        std::snprintf(num, sizeof(num), "%.3f", e.startUs);
        os << ", \"ts\": " << num;
        std::snprintf(num, sizeof(num), "%.3f", e.durationUs);
        os << ", \"dur\": " << num;
        os << ", \"args\": {\"depth\": " << e.depth;
        if (e.requestId != 0)
            os << ", \"req\": " << e.requestId;
        for (const auto &[key, value] : e.args)
            os << ", \"" << jsonEscape(key) << "\": " << value;
        os << "}}";
    }
    os << "\n]}\n";
    return os.str();
}

std::string
metricsJson()
{
    std::ostringstream os;
    os << "{\"schema\": \"pom-metrics/v1\", \"metrics\": [";
    bool first = true;
    char num[64];
    for (const auto &[name, m] : metricsSnapshot()) {
        if (!first)
            os << ",";
        first = false;
        const char *kind = m.kind == Metric::Kind::Counter ? "counter"
                           : m.kind == Metric::Kind::Accumulator
                               ? "accumulator"
                               : "gauge";
        std::snprintf(num, sizeof(num), "%.9g", m.value);
        os << "\n  {\"name\": \"" << jsonEscape(name) << "\", \"kind\": \""
           << kind << "\", \"count\": " << m.count << ", \"value\": " << num
           << "}";
    }
    // Histograms ride in the same array as a fourth kind; the body of
    // Histogram::json() (summary + sparse buckets) is spliced in.
    for (const auto &[name, histogram] : histogramsSnapshot()) {
        if (!first)
            os << ",";
        first = false;
        std::string body = histogram.json();
        // body is "{...}": splice its fields after our name/kind header.
        os << "\n  {\"name\": \"" << jsonEscape(name)
           << "\", \"kind\": \"histogram\", " << body.substr(1);
    }
    os << "\n]}\n";
    return os.str();
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

} // namespace pom::obs
