/**
 * @file
 * POM's tracing and metrics subsystem. Everything the compiler wants to
 * observe about itself flows through this module:
 *
 *  - **Spans**: RAII scoped timers with per-thread nesting. A completed
 *    span becomes one Chrome trace-event ("X" phase) that nests under
 *    its enclosing span in chrome://tracing / Perfetto.
 *  - **Counters / accumulators / gauges**: named process-wide metrics.
 *    Counters are monotonically-increasing int64 values, accumulators
 *    sum doubles (wall-clock seconds), gauges keep the last value set.
 *  - **Histograms** (histogram.h): named fixed-bucket log-scale latency
 *    distributions with p50/p90/p99 extraction, serialized into the
 *    same metrics JSON (kind "histogram").
 *  - **Exporters**: the Chrome trace-event JSON format for spans and a
 *    flat machine-readable JSON report for metrics. The DSE search
 *    journal (journal.h) shares the same JSON conventions.
 *
 * Tracing and metrics are disabled by default; both gates are single
 * atomic loads, so instrumented code paths cost nothing measurable when
 * observation is off. All recording is thread-safe: a DSE sweep or the
 * test suite may feed the registry from many threads concurrently.
 */

#ifndef POM_OBS_OBS_H
#define POM_OBS_OBS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace pom::obs {

// ----- enablement --------------------------------------------------------

/** Turn span recording on/off (off by default). */
void setTracingEnabled(bool enabled);
bool tracingEnabled();

/** Turn metric-driven instrumentation sites on/off (off by default). */
void setMetricsEnabled(bool enabled);
bool metricsEnabled();

/**
 * The trace output path requested via the POM_TRACE environment
 * variable: unset/empty -> "", the literal "1" -> "pom-trace.json",
 * anything else -> the value itself. Does not enable tracing; tools do
 * that when they decide to honour the variable.
 */
std::string traceEnvPath();

/** Microseconds since the process-wide trace epoch (steady clock). */
double nowMicros();

// ----- spans -------------------------------------------------------------

/** One completed span (an "X" event in the Chrome trace format). */
struct SpanEvent
{
    std::string name;
    std::string category;
    double startUs = 0.0;
    double durationUs = 0.0;
    int threadId = 0; ///< small per-process thread index, 0 = first seen
    int depth = 0;    ///< nesting depth within the owning thread
    /** Correlated daemon request (support::currentRequestId() at span
     *  construction); 0 outside a request. Exported as arg "req". */
    std::int64_t requestId = 0;
    /** Extra key/value payload; values are pre-encoded JSON terms. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * RAII scoped span. Construction samples the clock and bumps the
 * calling thread's nesting depth; destruction records one SpanEvent.
 * When tracing is disabled at construction time the span is inert.
 */
class Span
{
  public:
    explicit Span(std::string name, std::string category = "pom");
    ~Span();
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an argument shown under the span in the trace viewer. */
    void arg(const std::string &key, const std::string &value);
    void arg(const std::string &key, std::int64_t value);
    void arg(const std::string &key, double value);

  private:
    bool active_ = false;
    SpanEvent event_;
};

/** Completed spans, in completion order. */
std::vector<SpanEvent> traceSnapshot();

/** Drop all recorded spans. */
void resetTrace();

// ----- counters, accumulators and gauges ---------------------------------

/** Snapshot value of one named metric. */
struct Metric
{
    enum class Kind { Counter, Accumulator, Gauge };
    Kind kind = Kind::Counter;
    std::int64_t count = 0; ///< counter value / number of samples
    double value = 0.0;     ///< accumulator sum / last gauge value
};

/** Add @p delta to an int64 counter (creates it at zero). */
void counterAdd(const std::string &name, std::int64_t delta = 1);

/** Add @p delta to a double accumulator (creates it at zero). */
void accumulate(const std::string &name, double delta);

/** Set a gauge to its latest observation. */
void gaugeSet(const std::string &name, double value);

/** Current counter value; 0 when the counter does not exist. */
std::int64_t counterValue(const std::string &name);

/** Accumulator sum / gauge value; 0.0 when the metric does not exist. */
double metricValue(const std::string &name);

/** All metrics in first-touch (insertion) order. */
std::vector<std::pair<std::string, Metric>> metricsSnapshot();

/** Drop every metric. */
void resetMetrics();

/** Drop the metrics whose name starts with @p prefix. */
void resetMetricsWithPrefix(const std::string &prefix);

// ----- histograms --------------------------------------------------------

/**
 * Record one sample into the named process-wide histogram (created on
 * first touch). Unlike counters, histogram sites are expected to gate
 * themselves on metricsEnabled() when they sit on a hot path.
 */
void histogramRecord(const std::string &name, double value);

/** Snapshot of one named histogram; empty histogram when unknown. */
Histogram histogramSnapshot(const std::string &name);

/** All named histograms in first-touch order (copied snapshots). */
std::vector<std::pair<std::string, Histogram>> histogramsSnapshot();

/** Drop every named histogram. */
void resetHistograms();

/** Drop the histograms whose name starts with @p prefix. */
void resetHistogramsWithPrefix(const std::string &prefix);

// ----- thread naming -----------------------------------------------------

/**
 * Name the calling thread for trace attribution: the name appears as a
 * Chrome-trace "thread_name" metadata event for this thread's tid, so
 * concurrent request traces are attributable in chrome://tracing.
 * Threads that never call this inherit their OS-level thread name (set
 * by support::ThreadPool for its workers) the first time they complete
 * a span.
 */
void setCurrentThreadName(const std::string &name);

// ----- export ------------------------------------------------------------

/** JSON string-literal escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &text);

/**
 * All recorded spans in the Chrome trace-event format, loadable by
 * chrome://tracing and https://ui.perfetto.dev.
 */
std::string chromeTraceJson();

/** All metrics as one flat machine-readable JSON report. */
std::string metricsJson();

/** Write @p content to @p path; false (not fatal) on I/O failure. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace pom::obs

#endif // POM_OBS_OBS_H
