/**
 * @file
 * Shared helpers for the paper-table reproduction harnesses: framework
 * runners, utilization formatting, schedule-shape extraction
 * (tile/unroll factors and parallelism degree) from lowered designs,
 * and machine-readable measurement export through the src/obs metrics
 * API (set POM_BENCH_JSON=out.json to capture a table run).
 */

#ifndef POM_BENCH_BENCH_UTIL_H
#define POM_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "hls/count.h"
#include "obs/obs.h"
#include "support/version.h"
#include "workloads/workloads.h"

namespace pom::benchutil {

/** "166 (75%)" style resource cell. */
inline std::string
util(int used, int total)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d (%d%%)", used,
                  total > 0 ? 100 * used / total : 0);
    return buf;
}

/** "6.46x" style speedup cell. */
inline std::string
speedupCell(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", s);
    return buf;
}

/**
 * Unroll copies per statement of a design: the trip counts of every
 * fully/partially unrolled loop, e.g. "[1, 2, 16]" per nest -- the
 * paper's "achieved tile sizes and unroll factors" column.
 */
inline std::string
tileShape(const lower::LoweredFunction &design)
{
    std::string out;
    for (const auto &stmt : design.stmts) {
        auto trips = hls::avgTrips(stmt.sched.domain);
        std::vector<std::int64_t> copies;
        for (size_t l = 0; l < stmt.numDims(); ++l) {
            std::int64_t u = stmt.sched.hwPerDim[l].unrollFactor;
            if (u == 1)
                continue;
            copies.push_back(u == 0 ? trips[l] : std::min(u, trips[l]));
        }
        if (copies.empty())
            copies.push_back(1);
        if (!out.empty())
            out += ", ";
        out += "[";
        for (size_t i = 0; i < copies.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(copies[i]);
        }
        out += "]";
    }
    return out;
}

/** Total spatial parallelism / achieved II of a design. */
inline double
parallelismDegree(const lower::LoweredFunction &design,
                  const hls::SynthesisReport &report)
{
    std::int64_t max_copies = 1;
    for (const auto &stmt : design.stmts) {
        auto trips = hls::avgTrips(stmt.sched.domain);
        std::int64_t copies = 1;
        for (size_t l = 0; l < stmt.numDims(); ++l) {
            std::int64_t u = stmt.sched.hwPerDim[l].unrollFactor;
            if (u == 1)
                continue;
            copies *= (u == 0 ? trips[l] : std::min(u, trips[l]));
        }
        max_copies = std::max(max_copies, copies);
    }
    int ii = report.worstII();
    return static_cast<double>(max_copies) / (ii > 0 ? ii : 1);
}

/** Achieved-II cell like "1" or "4, 1" (per pipelined loop). */
inline std::string
iiCell(const hls::SynthesisReport &report)
{
    if (report.loops.empty())
        return "-";
    std::string out;
    for (size_t i = 0; i < report.loops.size() && i < 4; ++i) {
        if (i)
            out += ", ";
        out += std::to_string(report.loops[i].achievedII);
    }
    if (report.loops.size() > 4)
        out += ", ...";
    return out;
}

/**
 * Enable metrics export when the POM_BENCH_JSON environment variable
 * names an output file. Call once at the top of a harness main();
 * returns the path to pass to writeBenchMetrics() ("" when disabled,
 * making both helpers no-ops).
 */
inline std::string
initBenchMetrics()
{
    const char *env = std::getenv("POM_BENCH_JSON");
    std::string path = env != nullptr ? env : "";
    if (!path.empty())
        obs::setMetricsEnabled(true);
    return path;
}

/**
 * Record one table row through the obs metrics API as
 * "bench.<table>.<row>.<field>" gauges, so every number a harness
 * prints is also available machine-readably. No-op unless metrics are
 * enabled (see initBenchMetrics()).
 */
inline void
recordMeasurement(const std::string &table, const std::string &row,
                  const hls::SynthesisReport &report,
                  double speedup = 0.0, double seconds = 0.0)
{
    if (!obs::metricsEnabled())
        return;
    std::string prefix = "bench." + table + "." + row + ".";
    obs::gaugeSet(prefix + "latency_cycles",
                  static_cast<double>(report.latencyCycles));
    obs::gaugeSet(prefix + "dsp",
                  static_cast<double>(report.resources.dsp));
    obs::gaugeSet(prefix + "ff", static_cast<double>(report.resources.ff));
    obs::gaugeSet(prefix + "lut",
                  static_cast<double>(report.resources.lut));
    obs::gaugeSet(prefix + "bram_bits",
                  static_cast<double>(report.resources.bramBits));
    obs::gaugeSet(prefix + "worst_ii",
                  static_cast<double>(report.worstII()));
    if (speedup > 0.0)
        obs::gaugeSet(prefix + "speedup", speedup);
    if (seconds > 0.0)
        obs::gaugeSet(prefix + "toolchain_seconds", seconds);
    obs::counterAdd("bench.measurements");
}

/**
 * The git SHA to stamp into bench output: the POM_BENCH_SHA override
 * when set (CI passes the exact commit being measured), else
 * `git rev-parse --short HEAD`, else "unknown" (a source tarball).
 */
inline std::string
benchGitSha()
{
    if (const char *env = std::getenv("POM_BENCH_SHA")) {
        if (env[0] != '\0')
            return env;
    }
    std::string sha;
    if (FILE *pipe = ::popen("git rev-parse --short HEAD 2>/dev/null",
                             "r")) {
        char buf[64];
        if (std::fgets(buf, sizeof(buf), pipe) != nullptr)
            sha = buf;
        ::pclose(pipe);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

/** Current UTC time as ISO-8601 ("2026-08-08T12:34:56Z"). */
inline std::string
benchTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

/**
 * Flush the metrics captured by recordMeasurement() to `path` as a
 * self-describing pom-bench/v1 document: the pom-metrics/v1 payload
 * plus version/sha/timestamp header keys, so trend records
 * (tools/pom-trend) need no side channel to identify the commit.
 */
inline void
writeBenchMetrics(const std::string &path)
{
    if (path.empty())
        return;
    std::string body = obs::metricsJson();
    const std::string metricsHeader = "{\"schema\": \"pom-metrics/v1\",";
    if (body.rfind(metricsHeader, 0) == 0) {
        std::string header =
            "{\"schema\": \"pom-bench/v1\", \"version\": \"" +
            std::string(support::kVersionString) + "\", \"sha\": \"" +
            obs::jsonEscape(benchGitSha()) + "\", \"timestamp\": \"" +
            benchTimestamp() + "\",";
        body = header + body.substr(metricsHeader.size());
    }
    if (!obs::writeFile(path, body))
        std::fprintf(stderr, "bench: cannot write '%s'\n", path.c_str());
}

} // namespace pom::benchutil

#endif // POM_BENCH_BENCH_UTIL_H
