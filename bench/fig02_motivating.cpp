/**
 * @file
 * Reproduces Fig. 2: the BICG motivating example. Compares latency and
 * speedup of the baseline, Pluto-like, POLSCA-like, ScaleHLS-like and
 * POM designs, and shows the achieved initiation intervals (the paper
 * reports POLSCA II=167, ScaleHLS II=43, POM II=2).
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const std::int64_t n = 4096;
    const std::string bench_json = benchutil::initBenchMetrics();
    std::printf("=== Fig. 2: motivating example (BICG, N=%lld) ===\n\n",
                static_cast<long long>(n));

    auto base_w = workloads::makeBicg(n);
    auto base = baselines::runUnoptimized(base_w->func());

    struct Row
    {
        const char *name;
        baselines::BaselineResult result;
    };
    std::vector<Row> rows;
    {
        auto w = workloads::makeBicg(n);
        rows.push_back({"Baseline", baselines::runUnoptimized(w->func())});
    }
    {
        auto w = workloads::makeBicg(n);
        rows.push_back({"Pluto", baselines::runPlutoLike(w->func())});
    }
    {
        auto w = workloads::makeBicg(n);
        rows.push_back({"POLSCA", baselines::runPolscaLike(w->func())});
    }
    {
        auto w = workloads::makeBicg(n);
        rows.push_back({"ScaleHLS", baselines::runScaleHlsLike(w->func())});
    }
    {
        auto w = workloads::makeBicg(n);
        rows.push_back({"POM", baselines::runPom(w->func())});
    }

    std::printf("%-10s %16s %10s %8s\n", "Framework", "Latency (cycles)",
                "Speedup", "II");
    for (const auto &row : rows) {
        std::printf("%-10s %16llu %10s %8s\n", row.name,
                    static_cast<unsigned long long>(
                        row.result.report.latencyCycles),
                    benchutil::speedupCell(
                        row.result.report.speedupOver(base.report))
                        .c_str(),
                    benchutil::iiCell(row.result.report).c_str());
        benchutil::recordMeasurement(
            "fig02.bicg", row.name, row.result.report,
            row.result.report.speedupOver(base.report),
            row.result.seconds);
    }

    std::printf("\nExpected shape (paper): Pluto ~ baseline; POLSCA a "
                "small constant factor;\nScaleHLS limited by the II it "
                "cannot reduce for both statements;\nPOM pipelines at "
                "II=1-2 via split-interchange-merge.\n");
    benchutil::writeBenchMetrics(bench_json);
    return 0;
}
