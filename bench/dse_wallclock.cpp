/**
 * @file
 * Wall-clock benchmark for the parallel, memoized DSE (ISSUE 4
 * acceptance harness). Three measurements:
 *
 *   1. Workload-level fan-out: the full non-DNN sweep run sequentially
 *      vs. fanned out across a support::ThreadPool (one autoDSE task
 *      per workload, each pinned to jobs=1 so the pool is the only
 *      source of parallelism).
 *   2. Intra-search speculation: one DNN search (vgg16) at jobs=1 vs.
 *      jobs=4, cold cache each time, to price the speculative stage-2
 *      batches on real hardware.
 *   3. Memoization: the same sweep re-run against a warm
 *      hls::EstimatorCache, plus the cache hit rate.
 *   4. Search strategies: the non-DNN sweep once per stage-2 driver
 *      (greedy / beam / anneal), cold cache each, reporting points
 *      explored, final frontier size, wall-clock and cache hit rate
 *      per strategy ("bench.dse.strategy.<name>.*" gauges).
 *   5. Disk-warm start: sweep against a cache spill loaded from disk.
 *   6. Pipeline cache: the full 18-workload sweep (non-DNN at 128 plus
 *      both DNNs) cold, then again with the estimator cache dropped
 *      but the pass::PipelineCache kept warm, isolating the lowering
 *      prefix-skip ("bench.dse.pipeline.*" gauges).
 *   7. Incremental estimation: the same full sweep with per-node
 *      composition disabled (every point lowers and estimates the
 *      whole design) vs. enabled, cold caches both times, reporting
 *      the speedup and the node-reuse rate
 *      ("bench.dse.incremental.*" gauges).
 *
 * Set POM_BENCH_JSON=BENCH_dse.json to capture every printed number as
 * "bench.dse.*" gauges (see bench_util.h). Speedups depend on the host:
 * on a single-core container the pool adds little and speculation can
 * even lose slightly (wasted trials), while the warm-cache run shows
 * the memoization ceiling; CI publishes the JSON so the numbers are
 * tracked per machine class.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dse/dse.h"
#include "hls/estimator_cache.h"
#include "hls/node_cache.h"
#include "pass/pipeline_cache.h"
#include "support/thread_pool.h"

using namespace pom;
using Clock = std::chrono::steady_clock;

namespace {

/** The sweep: every non-DNN workload at size 128. */
const std::vector<std::string> &
sweepNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &n : workloads::allNames())
            if (n != "vgg16" && n != "resnet18")
                out.push_back(n);
        return out;
    }();
    return names;
}

std::uint64_t
runOne(const std::string &name)
{
    auto w = workloads::makeByName(name, 128);
    dse::DseOptions opt;
    opt.jobs = 1; // the pool below is the only parallelism
    return dse::autoDSE(w->func(), opt).report.latencyCycles;
}

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Sweep wall-clock; checksum guards against dead-code elimination. */
double
runSweep(int pool_threads, std::uint64_t &checksum)
{
    checksum = 0;
    Clock::time_point t0 = Clock::now();
    if (pool_threads <= 1) {
        for (const auto &name : sweepNames())
            checksum += runOne(name);
        return seconds(t0);
    }
    support::ThreadPool pool(pool_threads);
    std::vector<std::future<std::uint64_t>> futures;
    for (const auto &name : sweepNames())
        futures.push_back(pool.submit([&name]() { return runOne(name); }));
    for (auto &f : futures)
        checksum += f.get();
    return seconds(t0);
}

double
runDnn(int jobs)
{
    auto w = workloads::makeByName("vgg16", 64);
    dse::DseOptions opt;
    opt.jobs = jobs;
    // Bounded depth keeps the benchmark under a minute; the speculation
    // cost/benefit ratio is the same at any depth.
    opt.maxParallelism = 4;
    Clock::time_point t0 = Clock::now();
    dse::autoDSE(w->func(), opt);
    return seconds(t0);
}

void
gauge(const std::string &name, double value)
{
    if (obs::metricsEnabled())
        obs::gaugeSet("bench.dse." + name, value);
}

/**
 * The full 18-workload sweep: every non-DNN workload at 128 plus both
 * DNNs at a bounded depth (the section-2 settings), jobs=1 throughout.
 * @p incremental toggles per-node estimation for section 7.
 */
double
runFullSweep(std::uint64_t &checksum, bool incremental = true)
{
    checksum = 0;
    Clock::time_point t0 = Clock::now();
    for (const auto &name : sweepNames()) {
        auto w = workloads::makeByName(name, 128);
        dse::DseOptions opt;
        opt.jobs = 1;
        opt.incrementalEstimate = incremental;
        checksum += dse::autoDSE(w->func(), opt).report.latencyCycles;
    }
    for (const char *dnn : {"vgg16", "resnet18"}) {
        auto w = workloads::makeByName(dnn, 64);
        dse::DseOptions opt;
        opt.jobs = 1;
        opt.maxParallelism = 4;
        opt.incrementalEstimate = incremental;
        checksum += dse::autoDSE(w->func(), opt).report.latencyCycles;
    }
    return seconds(t0);
}

} // namespace

int
main()
{
    std::string json = benchutil::initBenchMetrics();
    hls::EstimatorCache &cache = hls::EstimatorCache::global();
    const int threads = 4;
    std::printf("DSE wall-clock benchmark (%zu workloads, pool=%d, "
                "hardware_concurrency=%u)\n\n",
                sweepNames().size(), threads,
                std::thread::hardware_concurrency());

    // 1. Workload-level fan-out, cold cache both times.
    cache.clear();
    std::uint64_t sum1 = 0, sumN = 0;
    double cold_seq = runSweep(1, sum1);
    cache.clear();
    double cold_par = runSweep(threads, sumN);
    if (sum1 != sumN) {
        std::fprintf(stderr, "FATAL: sweep checksum diverged (%llu vs "
                             "%llu)\n",
                     static_cast<unsigned long long>(sum1),
                     static_cast<unsigned long long>(sumN));
        return 1;
    }
    double pool_speedup = cold_par > 0.0 ? cold_seq / cold_par : 0.0;
    std::printf("sweep cold, sequential:   %7.3f s\n", cold_seq);
    std::printf("sweep cold, %d-thread:     %7.3f s  (%.2fx)\n", threads,
                cold_par, pool_speedup);
    gauge("sweep.cold_seq_seconds", cold_seq);
    gauge("sweep.cold_pool_seconds", cold_par);
    gauge("sweep.pool_threads", threads);
    gauge("sweep.pool_speedup", pool_speedup);
    // Deterministic QoR series: the summed best latency across the
    // sweep. Hardware-independent, so the trend gate can hold it to a
    // tight threshold (a change means the search got better or worse,
    // never "the CI machine was busy").
    gauge("sweep.latency_cycles_sum", static_cast<double>(sum1));

    // 2. Memoization: the identical sweep against the cache the
    // pool run just filled.
    std::uint64_t hits0 = cache.hits(), misses0 = cache.misses();
    std::uint64_t sumW = 0;
    double warm = runSweep(1, sumW);
    double memo_speedup = warm > 0.0 ? cold_seq / warm : 0.0;
    std::uint64_t hits = cache.hits() - hits0;
    std::uint64_t misses = cache.misses() - misses0;
    double hit_rate = hits + misses > 0
                          ? static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
    if (sumW != sum1) {
        std::fprintf(stderr, "FATAL: warm sweep checksum diverged\n");
        return 1;
    }
    std::printf("sweep warm, sequential:   %7.3f s  (%.2fx, "
                "hit rate %.0f%%)\n",
                warm, memo_speedup, 100.0 * hit_rate);
    gauge("sweep.warm_seconds", warm);
    gauge("sweep.memo_speedup", memo_speedup);
    gauge("cache.hits", static_cast<double>(hits));
    gauge("cache.misses", static_cast<double>(misses));
    gauge("cache.hit_rate", hit_rate);

    // 3. Intra-search speculation on the deepest workload.
    cache.clear();
    double dnn1 = runDnn(1);
    cache.clear();
    double dnn4 = runDnn(4);
    double spec_speedup = dnn4 > 0.0 ? dnn1 / dnn4 : 0.0;
    std::printf("vgg16 search, jobs=1:     %7.3f s\n", dnn1);
    std::printf("vgg16 search, jobs=4:     %7.3f s  (%.2fx)\n", dnn4,
                spec_speedup);
    gauge("vgg16.jobs1_seconds", dnn1);
    gauge("vgg16.jobs4_seconds", dnn4);
    gauge("vgg16.speculation_speedup", spec_speedup);

    // 4. The same sweep once per search strategy, cold cache each.
    std::printf("\nper-strategy sweep (cold cache):\n");
    for (auto kind : {dse::StrategyKind::Greedy, dse::StrategyKind::Beam,
                      dse::StrategyKind::Anneal}) {
        cache.clear();
        std::uint64_t shits0 = cache.hits(), smisses0 = cache.misses();
        int points = 0;
        size_t frontier = 0;
        Clock::time_point t0 = Clock::now();
        for (const auto &name : sweepNames()) {
            auto w = workloads::makeByName(name, 128);
            dse::DseOptions opt;
            opt.jobs = 1;
            opt.strategy = kind;
            dse::DseResult res = dse::autoDSE(w->func(), opt);
            points += res.pointsExplored;
            frontier += res.frontier.size();
        }
        double secs = seconds(t0);
        std::uint64_t shits = cache.hits() - shits0;
        std::uint64_t smisses = cache.misses() - smisses0;
        double shit_rate =
            shits + smisses > 0
                ? static_cast<double>(shits) /
                      static_cast<double>(shits + smisses)
                : 0.0;
        const std::string sname = dse::strategyName(kind);
        std::printf("  %-7s %5d points, frontier %3zu, %7.3f s, "
                    "hit rate %.0f%%\n",
                    sname.c_str(), points, frontier, secs,
                    100.0 * shit_rate);
        gauge("strategy." + sname + ".points",
              static_cast<double>(points));
        gauge("strategy." + sname + ".frontier_size",
              static_cast<double>(frontier));
        gauge("strategy." + sname + ".seconds", secs);
        gauge("strategy." + sname + ".hit_rate", shit_rate);
    }

    // 5. Disk-warm start: spill the cold sweep's cache, drop it, load
    // the spill back (a daemon restart / `pomc --cache-dir` re-run)
    // and measure the sweep against the disk-loaded entries.
    std::printf("\ndisk-warm sweep (estimator-cache spill):\n");
    const std::string spill_dir = "BENCH_dse_cache";
    std::filesystem::remove_all(spill_dir);
    cache.clear();
    std::uint64_t sumD = 0;
    double disk_cold = runSweep(1, sumD);
    hls::SpillStats save_stats;
    std::string spill_error;
    Clock::time_point t_save = Clock::now();
    if (!cache.saveDir(spill_dir, save_stats, spill_error)) {
        std::fprintf(stderr, "FATAL: cache spill failed: %s\n",
                     spill_error.c_str());
        return 1;
    }
    double save_secs = seconds(t_save);
    cache.clear();
    hls::SpillStats load_stats;
    Clock::time_point t_load = Clock::now();
    if (!cache.loadDir(spill_dir, load_stats, spill_error)) {
        std::fprintf(stderr, "FATAL: cache load failed: %s\n",
                     spill_error.c_str());
        return 1;
    }
    double load_secs = seconds(t_load);
    std::uint64_t dhits0 = cache.hits(), dmisses0 = cache.misses();
    std::uint64_t sumD2 = 0;
    double disk_warm = runSweep(1, sumD2);
    if (sumD2 != sumD) {
        std::fprintf(stderr, "FATAL: disk-warm sweep checksum "
                             "diverged\n");
        return 1;
    }
    std::uint64_t dhits = cache.hits() - dhits0;
    std::uint64_t dmisses = cache.misses() - dmisses0;
    double dhit_rate = dhits + dmisses > 0
                           ? static_cast<double>(dhits) /
                                 static_cast<double>(dhits + dmisses)
                           : 0.0;
    double disk_speedup = disk_warm > 0.0 ? disk_cold / disk_warm : 0.0;
    std::printf("  spill:  %zu entries written in %.3f s, "
                "loaded %zu in %.3f s\n",
                save_stats.written, save_secs, load_stats.loaded,
                load_secs);
    std::printf("  sweep from disk-warm cache: %7.3f s  (%.2fx, "
                "hit rate %.0f%%)\n",
                disk_warm, disk_speedup, 100.0 * dhit_rate);
    gauge("spill.entries", static_cast<double>(save_stats.written));
    gauge("spill.save_seconds", save_secs);
    gauge("spill.load_seconds", load_secs);
    gauge("spill.warm_seconds", disk_warm);
    gauge("spill.warm_speedup", disk_speedup);
    gauge("spill.hit_rate", dhit_rate);

    // 6. Pipeline cache: cold (both caches empty) vs. warm (estimator
    // cache dropped again, pipeline cache kept), so the delta is the
    // lowering prefix-skip alone and not estimator memoization.
    std::printf("\npipeline-cache sweep (18 workloads):\n");
    auto &pipeline = pass::PipelineCache::global();
    pass::setPipelineCacheEnabled(true);
    pipeline.clear();
    cache.clear();
    std::uint64_t sumP = 0, sumP2 = 0;
    double pipe_cold = runFullSweep(sumP);
    cache.clear();
    std::uint64_t phits0 = pipeline.hits();
    std::uint64_t pmisses0 = pipeline.misses();
    double pipe_warm = runFullSweep(sumP2);
    pass::setPipelineCacheEnabled(false);
    if (sumP2 != sumP) {
        std::fprintf(stderr, "FATAL: pipeline-cache sweep checksum "
                             "diverged\n");
        return 1;
    }
    std::uint64_t phits = pipeline.hits() - phits0;
    std::uint64_t pmisses = pipeline.misses() - pmisses0;
    double phit_rate = phits + pmisses > 0
                           ? static_cast<double>(phits) /
                                 static_cast<double>(phits + pmisses)
                           : 0.0;
    double pipe_speedup = pipe_warm > 0.0 ? pipe_cold / pipe_warm : 0.0;
    std::printf("  sweep cold (both caches empty): %7.3f s\n",
                pipe_cold);
    std::printf("  sweep warm (pipeline cache only): %5.3f s  "
                "(%.2fx, hit rate %.0f%%)\n",
                pipe_warm, pipe_speedup, 100.0 * phit_rate);
    gauge("pipeline.cold_seconds", pipe_cold);
    gauge("pipeline.warm_seconds", pipe_warm);
    gauge("pipeline.speedup", pipe_speedup);
    gauge("pipeline.hits", static_cast<double>(phits));
    gauge("pipeline.misses", static_cast<double>(pmisses));
    gauge("pipeline.hit_rate", phit_rate);

    // 7. Incremental estimation: the full sweep with per-node
    // composition off (monolithic lower+estimate per point) vs. on,
    // both fully cold (estimator AND node caches dropped, pipeline
    // cache off), so the delta is node reuse alone. The checksum
    // equality doubles as the byte-identity guard the differential
    // tests enforce in finer grain.
    std::printf("\nincremental-estimation sweep (18 workloads):\n");
    auto &nodes = hls::NodeReportCache::global();
    cache.clear();
    nodes.clear();
    std::uint64_t sumF = 0, sumI = 0;
    double inc_full = runFullSweep(sumF, /*incremental=*/false);
    cache.clear();
    nodes.clear();
    std::uint64_t nhits0 = nodes.hits(), nmisses0 = nodes.misses();
    double inc_incr = runFullSweep(sumI, /*incremental=*/true);
    if (sumI != sumF) {
        std::fprintf(stderr, "FATAL: incremental sweep checksum "
                             "diverged (%llu vs %llu)\n",
                     static_cast<unsigned long long>(sumF),
                     static_cast<unsigned long long>(sumI));
        return 1;
    }
    std::uint64_t nhits = nodes.hits() - nhits0;
    std::uint64_t nmisses = nodes.misses() - nmisses0;
    double node_reuse = nhits + nmisses > 0
                            ? static_cast<double>(nhits) /
                                  static_cast<double>(nhits + nmisses)
                            : 0.0;
    double inc_speedup = inc_incr > 0.0 ? inc_full / inc_incr : 0.0;
    std::printf("  sweep full estimation:        %7.3f s\n", inc_full);
    std::printf("  sweep incremental (per-node): %7.3f s  (%.2fx, "
                "node reuse %.0f%%)\n",
                inc_incr, inc_speedup, 100.0 * node_reuse);
    gauge("incremental.full_seconds", inc_full);
    gauge("incremental.incremental_seconds", inc_incr);
    gauge("incremental.speedup", inc_speedup);
    gauge("incremental.node_reuse_rate", node_reuse);

    if (!json.empty())
        std::printf("\nwrote %s\n", json.c_str());
    benchutil::writeBenchMetrics(json);
    return 0;
}
