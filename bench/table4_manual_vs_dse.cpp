/**
 * @file
 * Reproduces Table IV: BICG optimized by an FPGA expert by hand (manual
 * primitives in the DSL) versus the automatic DSE. The paper reports
 * the DSE design 1.39x faster than the manual one while using fewer
 * resources.
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"

using namespace pom;

namespace {

/**
 * The "expert" manual schedule: interchange the q-statement's loops so
 * each statement's reduction moves outward where possible, tile the
 * remaining parallel dimension by 8 (a sensible but not optimal
 * factor), pipeline and unroll, and partition the arrays.
 */
driver::CompileResult
manualDesign(std::int64_t n)
{
    dsl::Function f("bicg_manual");
    dsl::Var i("i", 0, n), j("j", 0, n);
    dsl::Placeholder A(f, "A", {n, n});
    dsl::Placeholder p(f, "p", {n});
    dsl::Placeholder r(f, "r", {n});
    dsl::Placeholder q(f, "q", {n});
    dsl::Placeholder s(f, "s", {n});
    dsl::Compute sq(f, "s_q", {i, j}, q(i) + A(i, j) * p(j), q(i));
    dsl::Compute ss(f, "s_s", {i, j}, s(j) + r(i) * A(i, j),
                           s(j));
    // Manual restructuring: q accumulates over j, so bring i inner for
    // s_q; s accumulates over i, keep j inner for s_s; run the two
    // nests separately (the expert could not merge them back).
    dsl::Var io("io"), ii("ii"), jo("jo"), ji("ji");
    sq.interchange(i, j);
    sq.split(i, 16, io, ii);
    sq.pipeline(io, 1);
    sq.unroll(ii, 0);
    ss.split(j, 16, jo, ji);
    ss.pipeline(jo, 1);
    ss.unroll(ji, 0);
    ss.after(sq);
    A.partition({16, 16}, "cyclic");
    q.partition({16}, "cyclic");
    s.partition({16}, "cyclic");
    p.partition({16}, "cyclic");
    r.partition({16}, "cyclic");
    return driver::compile(f);
}

} // namespace

int
main()
{
    const std::int64_t n = 4096;
    const auto device = hls::Device::xc7z020();

    std::printf("=== Table IV: manual optimization vs DSE (BICG, N=%lld) "
                "===\n\n",
                static_cast<long long>(n));

    auto base_w = workloads::makeBicg(n);
    auto base = baselines::runUnoptimized(base_w->func());

    auto manual = manualDesign(n);

    auto dse_w = workloads::makeBicg(n);
    auto dse = baselines::runPom(dse_w->func());

    std::printf("%-12s %14s %9s %11s %13s %13s\n", "Design", "Cycles",
                "Speedup", "DSP(Util%)", "FF(Util%)", "LUT(Util%)");
    auto row = [&](const char *name, const hls::SynthesisReport &rep) {
        std::printf("%-12s %14llu %9s %11s %13s %13s\n", name,
                    static_cast<unsigned long long>(rep.latencyCycles),
                    benchutil::speedupCell(rep.speedupOver(base.report))
                        .c_str(),
                    benchutil::util(rep.resources.dsp, device.dsp).c_str(),
                    benchutil::util(rep.resources.ff, device.ff).c_str(),
                    benchutil::util(rep.resources.lut, device.lut)
                        .c_str());
    };
    row("Unoptimized", base.report);
    row("Manual opt.", manual.report);
    row("DSE opt.", dse.report);

    std::printf("\nExpected shape (paper): the DSE design beats the "
                "manual one (1.39x there)\nbecause split-interchange-"
                "merge re-fuses the two statements into one pipeline.\n");
    return 0;
}
