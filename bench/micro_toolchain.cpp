/**
 * @file
 * Google-benchmark microbenchmarks of the POM toolchain itself: the
 * cost of each compilation layer (dependence analysis, polyhedral
 * transformations, AST generation, lowering, estimation, full DSE).
 * The paper treats DSE time as the toolchain's runtime (Table III's
 * last column); these benchmarks break that time down per layer.
 */

#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "dse/dse.h"
#include "graph/dependence_graph.h"
#include "hls/count.h"
#include "hls/estimator.h"
#include "lower/lower.h"
#include "transform/poly_stmt.h"
#include "workloads/workloads.h"

using namespace pom;

static void
BM_DependenceAnalysisGemm(benchmark::State &state)
{
    auto w = workloads::makeGemm(state.range(0));
    auto stmts = lower::extractStmts(w->func());
    for (auto _ : state) {
        auto deps = transform::selfDependences(stmts[0]);
        benchmark::DoNotOptimize(deps);
    }
}
BENCHMARK(BM_DependenceAnalysisGemm)->Arg(64)->Arg(4096);

static void
BM_GraphConstruction3mm(benchmark::State &state)
{
    auto w = workloads::make3mm(state.range(0));
    auto stmts = lower::extractStmts(w->func());
    for (auto _ : state) {
        graph::DependenceGraph g(stmts);
        benchmark::DoNotOptimize(g.collectPaths());
    }
}
BENCHMARK(BM_GraphConstruction3mm)->Arg(4096);

static void
BM_TileTransformation(benchmark::State &state)
{
    auto w = workloads::makeGemm(state.range(0));
    auto base = lower::extractStmts(w->func());
    for (auto _ : state) {
        auto stmts = base;
        transform::tile(stmts[0], "i", "j", 4, 16, "i0", "j0", "i1",
                        "j1");
        benchmark::DoNotOptimize(stmts);
    }
}
BENCHMARK(BM_TileTransformation)->Arg(4096);

static void
BM_AstGeneration(benchmark::State &state)
{
    auto w = workloads::make3mm(state.range(0));
    auto stmts = lower::extractStmts(w->func());
    std::vector<ast::ScheduledStmt> sched;
    for (const auto &s : stmts)
        sched.push_back(s.sched);
    for (auto _ : state) {
        auto root = ast::buildAst(sched);
        benchmark::DoNotOptimize(root);
    }
}
BENCHMARK(BM_AstGeneration)->Arg(4096);

static void
BM_FullLowering(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto w = workloads::make2mm(state.range(0));
        state.ResumeTiming();
        auto lowered = lower::lower(w->func());
        benchmark::DoNotOptimize(lowered);
    }
}
BENCHMARK(BM_FullLowering)->Arg(4096);

static void
BM_SynthesisEstimate(benchmark::State &state)
{
    auto w = workloads::make2mm(state.range(0));
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    for (auto _ : state) {
        auto report = hls::estimate(w->func(), lowered);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_SynthesisEstimate)->Arg(4096);

static void
BM_PointCounting(benchmark::State &state)
{
    auto set = poly::IntegerSet::box({"i", "j", "k"}, {0, 0, 0},
                                     {state.range(0) - 1,
                                      state.range(0) - 1,
                                      state.range(0) - 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(hls::countPoints(set));
}
BENCHMARK(BM_PointCounting)->Arg(4096)->Arg(8192);

static void
BM_AutoDseGemm(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto w = workloads::makeGemm(state.range(0));
        state.ResumeTiming();
        auto result = dse::autoDSE(w->func());
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_AutoDseGemm)->Arg(4096)->Unit(benchmark::kMillisecond);

static void
BM_AutoDseBicg(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto w = workloads::makeBicg(state.range(0));
        state.ResumeTiming();
        auto result = dse::autoDSE(w->func());
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_AutoDseBicg)->Arg(4096)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
