/**
 * @file
 * Reproduces Table III: POLSCA-like, ScaleHLS-like and POM on the
 * typical HLS benchmarks (GEMM, BICG, GESUMMV, 2MM, 3MM) at problem
 * size 4096 -- speedup, resource utilization, power, achieved II,
 * tile/unroll shape, parallelism degree, and DSE time.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const std::int64_t n = 4096;
    const std::string bench_json = benchutil::initBenchMetrics();
    const auto device = hls::Device::xc7z020();
    const char *benchmarks[] = {"gemm", "bicg", "gesummv", "2mm", "3mm"};

    std::printf("=== Table III: typical HLS benchmarks (N=%lld) ===\n\n",
                static_cast<long long>(n));
    std::printf("%-8s %-9s %9s %11s %13s %13s %7s %-8s %-24s %7s %8s\n",
                "Bench", "Framework", "Speedup", "DSP(Util%)",
                "FF(Util%)", "LUT(Util%)", "Power", "II",
                "Tiles/unrolls", "Paral.", "DSE(s)");

    for (const char *name : benchmarks) {
        auto base_w = workloads::makeByName(name, n);
        auto base = baselines::runUnoptimized(base_w->func());

        struct Row
        {
            const char *fw;
            baselines::BaselineResult r;
        };
        std::vector<Row> rows;
        {
            auto w = workloads::makeByName(name, n);
            rows.push_back({"POLSCA",
                            baselines::runPolscaLike(w->func())});
        }
        {
            auto w = workloads::makeByName(name, n);
            rows.push_back({"ScaleHLS",
                            baselines::runScaleHlsLike(w->func())});
        }
        {
            auto w = workloads::makeByName(name, n);
            rows.push_back({"POM", baselines::runPom(w->func())});
        }

        for (const auto &row : rows) {
            const auto &rep = row.r.report;
            std::printf(
                "%-8s %-9s %9s %11s %13s %13s %6.2fW %-8s %-24s %7.1f "
                "%8.2f\n",
                name, row.fw,
                benchutil::speedupCell(rep.speedupOver(base.report))
                    .c_str(),
                benchutil::util(rep.resources.dsp, device.dsp).c_str(),
                benchutil::util(rep.resources.ff, device.ff).c_str(),
                benchutil::util(rep.resources.lut, device.lut).c_str(),
                rep.powerW, benchutil::iiCell(rep).c_str(),
                benchutil::tileShape(row.r.design).c_str(),
                benchutil::parallelismDegree(row.r.design, rep),
                row.r.seconds);
            benchutil::recordMeasurement(std::string("table3.") + name,
                                         row.fw, rep,
                                         rep.speedupOver(base.report),
                                         row.r.seconds);
        }
        std::printf("\n");
    }

    std::printf("Expected shape (paper): POLSCA ~2x from pipelining with "
                "unresolved dependences;\nScaleHLS strong on GEMM/GESUMMV "
                "but II-limited on BICG and under-optimized on 2MM/3MM;\n"
                "POM II=1-2 everywhere with ~[1,2,16]-shaped unrolls and "
                "the shortest DSE times.\n");
    benchutil::writeBenchMetrics(bench_json);
    return 0;
}
