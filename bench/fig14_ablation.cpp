/**
 * @file
 * Reproduces Fig. 14: impact analysis of scheduling primitives. Each
 * benchmark is compiled with increasing sets of primitives (LP = loop
 * pipelining, LU = loop unrolling, AP = array partitioning, LT = loop
 * tiling, LI = loop interchange, LSK = loop skewing) and the speedup /
 * DSP usage of each configuration is reported. The paper's observation:
 * which primitive matters depends on the kernel -- EdgeDetect gains most
 * from pipelining, Seidel needs skewing first, 2MM needs the full
 * combination.
 */

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "driver/compiler.h"

using namespace pom;

namespace {

void
report(const char *bench, const char *config,
       const hls::SynthesisReport &rep, const hls::SynthesisReport &base)
{
    std::printf("%-11s %-18s %9s %6d DSP %8s II\n", bench, config,
                benchutil::speedupCell(rep.speedupOver(base)).c_str(),
                rep.resources.dsp, benchutil::iiCell(rep).c_str());
}

/** 2MM with progressively richer schedules. */
void
run2mm()
{
    const std::int64_t n = 1024;
    auto base_w = workloads::make2mm(n);
    auto base = baselines::runUnoptimized(base_w->func());

    auto with = [&](const char *config,
                    std::function<void(workloads::Workload &)> schedule) {
        auto w = workloads::make2mm(n);
        schedule(*w);
        auto r = driver::compile(w->func());
        report("2mm", config, r.report, base.report);
    };

    with("LP", [](workloads::Workload &w) {
        for (auto *c : w.func().computes())
            c->pipeline(c->iters().back(), 1);
    });
    with("LP+LU", [](workloads::Workload &w) {
        for (auto *c : w.func().computes()) {
            c->pipeline(c->iters()[1], 1);
            c->unroll(c->iters().back(), 8);
        }
    });
    with("LT+LP+LU+AP", [](workloads::Workload &w) {
        int idx = 0;
        for (auto *c : w.func().computes()) {
            dsl::Var i0("ti0_" + std::to_string(idx)),
                j0("tj0_" + std::to_string(idx)),
                i1("ti1_" + std::to_string(idx)),
                j1("tj1_" + std::to_string(idx));
            c->tile(c->iters()[0], c->iters()[1], 2, 8, i0, j0, i1, j1);
            c->pipeline(j0, 1);
            c->unroll(i1, 0);
            c->unroll(j1, 0);
            ++idx;
        }
        for (auto *p : w.func().placeholders()) {
            std::vector<std::int64_t> factors(p->shape().size(), 8);
            w.func().findPlaceholderMut(p->name())->partition(factors,
                                                              "cyclic");
        }
    });
    {
        auto w = workloads::make2mm(n);
        auto r = baselines::runPom(w->func());
        report("2mm", "auto_DSE (all)", r.report, base.report);
    }
}

/** EdgeDetect: pipelining already captures most of the benefit. */
void
runEdgeDetect()
{
    const std::int64_t n = 1024;
    auto base_w = workloads::makeEdgeDetect(n);
    auto base = baselines::runUnoptimized(base_w->func());

    {
        auto w = workloads::makeEdgeDetect(n);
        for (auto *c : w->func().computes())
            c->pipeline(c->iters().back(), 1);
        auto r = driver::compile(w->func());
        report("edgedetect", "LP", r.report, base.report);
    }
    {
        auto w = workloads::makeEdgeDetect(n);
        int idx = 0;
        for (auto *c : w->func().computes()) {
            dsl::Var o("uo_" + std::to_string(idx)),
                in("ui_" + std::to_string(idx));
            c->split(c->iters().back(), 8, o, in);
            c->pipeline(o, 1);
            c->unroll(in, 0);
            ++idx;
        }
        for (auto *p : w->func().placeholders()) {
            std::vector<std::int64_t> factors(p->shape().size(), 1);
            factors.back() = 8;
            w->func().findPlaceholderMut(p->name())->partition(factors,
                                                               "cyclic");
        }
        auto r = driver::compile(w->func());
        report("edgedetect", "LP+LU+AP", r.report, base.report);
    }
    {
        auto w = workloads::makeEdgeDetect(n);
        auto r = baselines::runPom(w->func());
        report("edgedetect", "auto_DSE (all)", r.report, base.report);
    }
}

/** Seidel: pipelining alone is II-bound; skewing unlocks it. */
void
runSeidel()
{
    const std::int64_t n = 256;
    auto base_w = workloads::makeSeidel2d(n, n / 16);
    auto base = baselines::runUnoptimized(base_w->func());

    {
        auto w = workloads::makeSeidel2d(n, n / 16);
        for (auto *c : w->func().computes())
            c->pipeline(c->iters().back(), 1);
        auto r = driver::compile(w->func());
        report("seidel", "LP", r.report, base.report);
    }
    {
        auto w = workloads::makeSeidel2d(n, n / 16);
        dsl::Compute *c = w->func().computes()[0];
        dsl::Var i = c->iters()[1], j = c->iters()[2];
        dsl::Var ip("ip"), jp("jp");
        c->skew(i, j, 1, ip, jp);
        c->interchange(ip, jp);
        c->pipeline(ip, 1);
        auto r = driver::compile(w->func());
        report("seidel", "LSK+LI+LP", r.report, base.report);
    }
    {
        auto w = workloads::makeSeidel2d(n, n / 16);
        auto r = baselines::runPom(w->func());
        report("seidel", "auto_DSE (all)", r.report, base.report);
    }
}

} // namespace

int
main()
{
    std::printf("=== Fig. 14: impact analysis of scheduling primitives "
                "===\n\n");
    std::printf("%-11s %-18s %9s %10s %11s\n", "Benchmark", "Primitives",
                "Speedup", "Resources", "Achieved");
    runEdgeDetect();
    runSeidel();
    run2mm();
    std::printf("\nExpected shape (paper Fig. 14): pipelining alone "
                "helps EdgeDetect most;\nSeidel barely moves without "
                "skewing; 2MM needs the full combination of loop\n"
                "transformations and hardware optimizations.\n");
    return 0;
}
