/**
 * @file
 * Reproduces Fig. 13: accumulated resource usage across the critical
 * loops of the DNN workloads. POM executes layers sequentially and
 * reuses hardware between them (the accumulated curve flattens at the
 * largest single layer), while the ScaleHLS-like dataflow instantiates
 * each layer separately (the curve keeps climbing and overshoots the
 * device budget).
 */

#include <cstdio>

#include "bench_util.h"
#include "lower/lower.h"

using namespace pom;

namespace {

void
runModel(const char *name, std::int64_t size)
{
    const auto device = hls::Device::xc7z020();
    std::printf("-- %s --\n", name);
    std::printf("%-6s %-14s | %11s %11s | %11s %11s\n", "Loop", "Nest",
                "POM DSP", "POM LUT", "SC DSP", "SC LUT");

    auto w_pom = workloads::makeByName(name, size);
    auto pom = baselines::runPom(w_pom->func());
    auto w_sc = workloads::makeByName(name, size);
    auto sc = baselines::runScaleHlsLike(w_sc->func());

    // Accumulate per-nest resources in program order: POM reuses (the
    // running max), ScaleHLS's dataflow accumulates (the running sum).
    // Per-nest resources are re-estimated from each design one nest at
    // a time.
    auto perNest = [&](const baselines::BaselineResult &r,
                       dsl::Function &func) {
        std::vector<hls::Resources> out;
        for (const auto &stmt : r.design.stmts) {
            std::vector<transform::PolyStmt> single = {stmt};
            single[0].sched.betas[0] = 0;
            auto lowered = lower::lowerStmts(func, std::move(single));
            auto rep = hls::estimate(func, lowered);
            out.push_back(rep.resources);
        }
        return out;
    };

    auto pom_res = perNest(pom, w_pom->func());
    auto sc_res = perNest(sc, w_sc->func());

    hls::Resources pom_acc, sc_acc;
    size_t loops = std::min(pom_res.size(), sc_res.size());
    for (size_t l = 0; l < loops; ++l) {
        pom_acc = hls::Resources::max(pom_acc, pom_res[l]);
        sc_acc += sc_res[l];
        std::printf("%-6zu %-14s | %11s %11s | %11s %11s%s\n", l + 1,
                    pom.design.stmts[l].sched.name.c_str(),
                    benchutil::util(pom_acc.dsp, device.dsp).c_str(),
                    benchutil::util(pom_acc.lut, device.lut).c_str(),
                    benchutil::util(sc_acc.dsp, device.dsp).c_str(),
                    benchutil::util(sc_acc.lut, device.lut).c_str(),
                    sc_acc.fitsIn(device) ? "" : "  <-- over budget");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Fig. 13: accumulated resource usage, DNN workloads "
                "===\n\n");
    runModel("vgg16", 512);
    runModel("resnet18", 512);
    std::printf("Expected shape (paper): the POM (reuse) curves flatten; "
                "the dataflow curves\nclimb linearly with layer count "
                "and exceed the device for deep models.\n");
    return 0;
}
