/**
 * @file
 * Reproduces Fig. 11: 2MM speedup and resource utilization under varying
 * resource constraints (25% / 50% / 75% / 100% of the XC7Z020 budget)
 * for ScaleHLS-like and POM.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const std::int64_t n = 4096;
    const auto device = hls::Device::xc7z020();
    const double fractions[] = {0.25, 0.5, 0.75, 1.0};

    std::printf("=== Fig. 11: 2MM under resource constraints (N=%lld) "
                "===\n\n",
                static_cast<long long>(n));
    std::printf("%-10s %-9s %9s %11s %13s %13s\n", "Constraint",
                "Framework", "Speedup", "DSP(Util%)", "FF(Util%)",
                "LUT(Util%)");

    auto base_w = workloads::make2mm(n);
    auto base = baselines::runUnoptimized(base_w->func());

    for (double fraction : fractions) {
        baselines::BaselineOptions opt;
        opt.resourceFraction = fraction;
        hls::Device budget = device.scaled(fraction);

        auto w_sc = workloads::make2mm(n);
        auto sc = baselines::runScaleHlsLike(w_sc->func(), opt);
        auto w_pom = workloads::make2mm(n);
        auto pom = baselines::runPom(w_pom->func(), opt);

        for (const auto &[fw, r] :
             {std::pair<const char *, const baselines::BaselineResult *>{
                  "ScaleHLS", &sc},
              {"POM", &pom}}) {
            std::printf("%-10.0f%% %-8s %9s %11s %13s %13s\n",
                        fraction * 100, fw,
                        benchutil::speedupCell(
                            r->report.speedupOver(base.report))
                            .c_str(),
                        benchutil::util(r->report.resources.dsp,
                                        budget.dsp)
                            .c_str(),
                        benchutil::util(r->report.resources.ff, budget.ff)
                            .c_str(),
                        benchutil::util(r->report.resources.lut,
                                        budget.lut)
                            .c_str());
        }
    }

    std::printf("\nExpected shape (paper Fig. 11): POM dominates at every "
                "constraint level and\nits speedup scales with the "
                "budget.\n");
    return 0;
}
