/**
 * @file
 * Reproduces Table VI: the tile sizes, achieved II, and parallelism of
 * the critical loops in the image-processing applications, for
 * ScaleHLS-like and POM.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const std::int64_t n = 4096;
    const char *apps[] = {"edgedetect", "gaussian", "blur"};

    std::printf("=== Table VI: critical-loop optimization (N=%lld) "
                "===\n\n",
                static_cast<long long>(n));
    std::printf("%-11s %-9s %-22s %-10s %10s\n", "Benchmark",
                "Framework", "Tile sizes", "Achieved II", "Parallelism");

    for (const char *name : apps) {
        auto w_sc = workloads::makeByName(name, n);
        auto sc = baselines::runScaleHlsLike(w_sc->func());
        auto w_pom = workloads::makeByName(name, n);
        auto pom = baselines::runPom(w_pom->func());

        std::printf("%-11s %-9s %-22s %-10s %10.1f\n", name, "ScaleHLS",
                    benchutil::tileShape(sc.design).c_str(),
                    benchutil::iiCell(sc.report).c_str(),
                    benchutil::parallelismDegree(sc.design, sc.report));
        std::printf("%-11s %-9s %-22s %-10s %10.1f\n", name, "POM",
                    benchutil::tileShape(pom.design).c_str(),
                    benchutil::iiCell(pom.report).c_str(),
                    benchutil::parallelismDegree(pom.design, pom.report));
    }

    std::printf("\nExpected shape (paper Table VI): POM reaches II=1 and "
                "a higher parallelism\ndegree on every kernel.\n");
    return 0;
}
