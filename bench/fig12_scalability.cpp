/**
 * @file
 * Reproduces Fig. 12: POM vs ScaleHLS speedups across problem sizes
 * (32..8192) on the typical HLS benchmarks. The paper's shape: both
 * scale steadily up to 2048; ScaleHLS declines at 4096 and collapses to
 * basic pipelining at 8192, while POM keeps producing high-quality
 * designs; for tiny GESUMMV, POM can be slightly behind.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const std::int64_t sizes[] = {32, 128, 512, 2048, 4096, 8192};
    const char *benchmarks[] = {"gemm", "bicg", "gesummv", "2mm", "3mm"};

    std::printf("=== Fig. 12: scalability across problem sizes ===\n\n");
    std::printf("%-8s %8s %14s %14s\n", "Bench", "Size", "ScaleHLS",
                "POM");

    for (const char *name : benchmarks) {
        for (std::int64_t n : sizes) {
            auto base_w = workloads::makeByName(name, n);
            auto base = baselines::runUnoptimized(base_w->func());

            auto w_sc = workloads::makeByName(name, n);
            auto sc = baselines::runScaleHlsLike(w_sc->func());
            auto w_pom = workloads::makeByName(name, n);
            auto pom = baselines::runPom(w_pom->func());

            std::printf("%-8s %8lld %14s %14s%s\n", name,
                        static_cast<long long>(n),
                        benchutil::speedupCell(
                            sc.report.speedupOver(base.report))
                            .c_str(),
                        benchutil::speedupCell(
                            pom.report.speedupOver(base.report))
                            .c_str(),
                        sc.notes.find("basic pipelining") !=
                                std::string::npos
                            ? "   (ScaleHLS: pipeline-only)"
                            : "");
        }
        std::printf("\n");
    }
    return 0;
}
