/**
 * @file
 * Reproduces Table VII: benchmarks with complicated data access
 * patterns and tight loop-carried dependences (Jacobi-1d, Jacobi-2d,
 * Heat-1d, Seidel). POM's skewing support is what unlocks these; the
 * paper notes ScaleHLS and POLSCA fail to improve them much and that
 * resource utilization stays low because the dependences bound the
 * attainable parallelism.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

int
main()
{
    const auto device = hls::Device::xc7z020();
    struct Case
    {
        const char *name;
        std::int64_t size;
    };
    const Case cases[] = {{"jacobi1d", 4096},
                          {"jacobi2d", 1024},
                          {"heat1d", 4096},
                          {"seidel", 1024}};

    std::printf("=== Table VII: complicated code patterns ===\n\n");
    std::printf("%-9s %9s %11s %13s %13s %8s | %9s %9s\n", "Benchmark",
                "Speedup", "DSP(Util%)", "FF(Util%)", "LUT(Util%)", "II",
                "ScaleHLS", "POLSCA");

    for (const auto &[name, size] : cases) {
        auto base_w = workloads::makeByName(name, size);
        auto base = baselines::runUnoptimized(base_w->func());

        auto w_pom = workloads::makeByName(name, size);
        auto pom = baselines::runPom(w_pom->func());
        auto w_sc = workloads::makeByName(name, size);
        auto sc = baselines::runScaleHlsLike(w_sc->func());
        auto w_po = workloads::makeByName(name, size);
        auto po = baselines::runPolscaLike(w_po->func());

        const auto &rep = pom.report;
        std::printf("%-9s %9s %11s %13s %13s %8s | %9s %9s\n", name,
                    benchutil::speedupCell(rep.speedupOver(base.report))
                        .c_str(),
                    benchutil::util(rep.resources.dsp, device.dsp)
                        .c_str(),
                    benchutil::util(rep.resources.ff, device.ff).c_str(),
                    benchutil::util(rep.resources.lut, device.lut)
                        .c_str(),
                    benchutil::iiCell(rep).c_str(),
                    benchutil::speedupCell(
                        sc.report.speedupOver(base.report))
                        .c_str(),
                    benchutil::speedupCell(
                        po.report.speedupOver(base.report))
                        .c_str());
    }

    std::printf("\nExpected shape (paper): POM improves these 22.9x to "
                "136x (the skewing payoff)\nwhile the comparators stay "
                "far behind; utilization ratios stay modest because\n"
                "loop-carried dependences bound the parallelism.\n");
    return 0;
}
