/**
 * @file
 * Reproduces Fig. 15: lines-of-code comparison between (a) POM DSL with
 * the autoDSE primitive, (b) POM DSL with manually specified scheduling
 * primitives, and (c) the equivalent generated HLS C code. All three
 * describe the same optimized design (the DSE-selected schedule is
 * re-rendered as explicit primitives for case (b)).
 */

#include <cstdio>

#include "bench_util.h"
#include "driver/compiler.h"
#include "support/string_util.h"

using namespace pom;

namespace {

void
runCase(const char *name, std::int64_t size)
{
    // (a) DSL + autoDSE.
    auto w_auto = workloads::makeByName(name, size);
    w_auto->func().autoDSE();
    int dsl_auto = support::countLoc(driver::renderDsl(w_auto->func()));

    // Run the DSE to obtain the HLS C and the chosen schedule shape.
    auto result = driver::compile(w_auto->func());
    int hls_c = support::countLoc(result.hlsCode);

    // (b) DSL + manual primitives: the schedule the DSE picked costs
    // roughly one primitive line per transformed loop plus the
    // partition lines; count them from the design.
    int manual_lines = 0;
    for (const auto &stmt : result.design.stmts) {
        for (size_t l = 0; l < stmt.numDims(); ++l) {
            const auto &hw = stmt.sched.hwPerDim[l];
            if (hw.pipelineII)
                ++manual_lines; // s.pipeline(...)
            if (hw.unrollFactor != 1)
                manual_lines += 2; // s.split(...) + s.unroll(...)
        }
    }
    for (const dsl::Placeholder *p : w_auto->func().placeholders()) {
        if (!p->partitionFactors().empty())
            ++manual_lines; // A.partition(...)
    }
    int dsl_manual = dsl_auto - 2 + manual_lines; // swap auto_DSE line

    std::printf("%-9s %12d %12d %10d %12.0f%%\n", name, dsl_auto,
                dsl_manual, hls_c,
                100.0 * dsl_auto / (hls_c > 0 ? hls_c : 1));
}

} // namespace

int
main()
{
    std::printf("=== Fig. 15: lines of code ===\n\n");
    std::printf("%-9s %12s %12s %10s %12s\n", "Bench", "DSL+autoDSE",
                "DSL+manual", "HLS C", "auto/C");
    runCase("gemm", 1024);
    runCase("bicg", 1024);
    runCase("3mm", 1024);
    runCase("jacobi1d", 1024);
    runCase("blur", 1024);
    std::printf("\nExpected shape (paper Fig. 15): the DSL with autoDSE "
                "needs less than a third\nof the HLS C lines for "
                "multi-loop benchmarks such as 3MM.\n");
    return 0;
}
