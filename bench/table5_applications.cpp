/**
 * @file
 * Reproduces Table V: real-world applications -- image processing
 * (EdgeDetect, Gaussian, Blur at 4096) and DNNs (VGG-16, ResNet-18 at
 * 512) -- comparing ScaleHLS-like and POM with the P/S ratio columns.
 */

#include <cstdio>

#include "bench_util.h"

using namespace pom;

namespace {

void
runRow(const char *name, std::int64_t size)
{
    const auto device = hls::Device::xc7z020();
    auto base_w = workloads::makeByName(name, size);
    auto base = baselines::runUnoptimized(base_w->func());

    auto w_sc = workloads::makeByName(name, size);
    auto sc = baselines::runScaleHlsLike(w_sc->func());
    auto w_pom = workloads::makeByName(name, size);
    auto pom = baselines::runPom(w_pom->func());

    double s_sc = sc.report.speedupOver(base.report);
    double s_pom = pom.report.speedupOver(base.report);
    std::printf("%-11s %6lld | %8s %8s %5.1f | %10s %10s %5.1f | %12s "
                "%12s %5.1f%s\n",
                name, static_cast<long long>(size),
                benchutil::speedupCell(s_sc).c_str(),
                benchutil::speedupCell(s_pom).c_str(), s_pom / s_sc,
                benchutil::util(sc.report.resources.dsp, device.dsp)
                    .c_str(),
                benchutil::util(pom.report.resources.dsp, device.dsp)
                    .c_str(),
                sc.report.resources.dsp > 0
                    ? static_cast<double>(pom.report.resources.dsp) /
                          sc.report.resources.dsp
                    : 0.0,
                benchutil::util(sc.report.resources.lut, device.lut)
                    .c_str(),
                benchutil::util(pom.report.resources.lut, device.lut)
                    .c_str(),
                sc.report.resources.lut > 0
                    ? static_cast<double>(pom.report.resources.lut) /
                          sc.report.resources.lut
                    : 0.0,
                sc.report.resources.fitsIn(device)
                    ? ""
                    : "   (ScaleHLS exceeds device!)");
}

} // namespace

int
main()
{
    std::printf("=== Table V: image processing and DNN applications "
                "===\n\n");
    std::printf("%-11s %6s | %8s %8s %5s | %10s %10s %5s | %12s %12s "
                "%5s\n",
                "App", "Size", "SC spd", "POM spd", "P/S", "SC DSP",
                "POM DSP", "P/S", "SC LUT", "POM LUT", "P/S");

    std::printf("-- Image processing --\n");
    runRow("edgedetect", 4096);
    runRow("gaussian", 4096);
    runRow("blur", 4096);

    std::printf("-- DNN --\n");
    runRow("vgg16", 512);
    runRow("resnet18", 512);

    std::printf("\nExpected shape (paper): POM 2-6x faster on image "
                "kernels with higher utilization;\nfor DNNs POM's "
                "resource reuse beats the dataflow mapping on VGG-16 "
                "(P/S 2.6)\nwhile ScaleHLS's ResNet-18 design exceeds "
                "the device budget.\n");
    return 0;
}
