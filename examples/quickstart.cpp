/**
 * @file
 * Quickstart: the paper's Fig. 4 / Fig. 5 / Fig. 6 flow in one program.
 *
 * 1. Describe a matrix multiplication with the POM DSL (iterators,
 *    placeholders, one compute).
 * 2. Attach scheduling primitives: tile, pipeline, unroll, partition.
 * 3. codegen(): lower through dependence-graph IR -> polyhedral IR ->
 *    annotated affine dialect, and emit synthesizable HLS C.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "driver/compiler.h"
#include "dsl/dsl.h"

int
main()
{
    using namespace pom::dsl;

    // --- Algorithm specification (Fig. 4) -------------------------------
    pom::dsl::Function f("gemm");
    Var i("i", 0, 32), j("j", 0, 32), k("k", 0, 32);
    Placeholder A(f, "A", {32, 32}, ScalarKind::F32);
    Placeholder B(f, "B", {32, 32}, ScalarKind::F32);
    Placeholder C(f, "C", {32, 32}, ScalarKind::F32);
    Compute s(f, "s", {k, i, j}, A(i, j) + B(i, k) * C(k, j), A(i, j));

    // --- Schedule (Fig. 5 + Fig. 6) --------------------------------------
    Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s.tile(i, j, 4, 4, i0, j0, i1, j1);
    s.pipeline(j0, 1);
    s.unroll(i1, 4);
    s.unroll(j1, 4);
    A.partition({4, 4}, "cyclic");

    // --- codegen() --------------------------------------------------------
    pom::driver::CompileResult result = pom::driver::compile(f);

    std::printf("---- synthesis report ----\n%s\n\n",
                result.report.str(pom::hls::Device::xc7z020()).c_str());
    std::printf("speedup over unscheduled code: %.1fx\n\n",
                result.report.speedupOver(result.baseline));
    std::printf("---- generated HLS C ----\n%s\n", result.hlsCode.c_str());
    return 0;
}
