/**
 * @file
 * A DNN accelerator scenario (paper §VII.E): compile the ResNet-18
 * convolution stack with POM's resource-reuse strategy and contrast it
 * with a ScaleHLS-style dataflow mapping. Prints the per-layer
 * parallelism the DSE selected, the accumulated resources under both
 * strategies, and the end-to-end latency/speedup.
 *
 * Build and run:  ./build/examples/dnn_accelerator
 */

#include <cstdio>

#include "baselines/baselines.h"
#include "dse/dse.h"
#include "workloads/workloads.h"

using namespace pom;

int
main()
{
    const std::int64_t size = 512;
    const auto device = hls::Device::xc7z020();

    std::printf("=== ResNet-18 accelerator (channel cap %lld) ===\n\n",
                static_cast<long long>(size));

    auto w_base = workloads::makeResnet18(size);
    auto base = baselines::runUnoptimized(w_base->func());
    std::printf("unoptimized: %llu cycles\n\n",
                static_cast<unsigned long long>(
                    base.report.latencyCycles));

    // POM: sequential layers, hardware shared between them.
    auto w_pom = workloads::makeResnet18(size);
    dse::DseOptions opt;
    opt.sharing = hls::SharingMode::Reuse;
    auto pom = dse::autoDSE(w_pom->func(), opt);
    std::printf("POM (resource reuse):\n  %s\n  speedup %.1fx, DSE "
                "%.2fs\n  per-layer parallelism:\n",
                pom.report.str(device).c_str(), pom.speedup(),
                pom.dseSeconds);
    for (const auto &[layer, degree] : pom.parallelism)
        std::printf("    %-14s %lld\n", layer.c_str(),
                    static_cast<long long>(degree));

    // ScaleHLS-style dataflow for contrast.
    auto w_sc = workloads::makeResnet18(size);
    auto sc = baselines::runScaleHlsLike(w_sc->func());
    std::printf("\nScaleHLS-like (dataflow):\n  %s\n  speedup %.1fx%s\n",
                sc.report.str(device).c_str(),
                sc.report.speedupOver(base.report),
                sc.report.resources.fitsIn(device)
                    ? ""
                    : "  -- exceeds the device budget");
    return 0;
}
