/**
 * @file
 * A realistic image-processing scenario: a Sobel edge-detection
 * pipeline (two gradient stencils + magnitude) on a 1080p-class frame,
 * compiled three ways -- unscheduled, hand-scheduled, and with autoDSE
 * -- to show how the primitives trade effort for performance. The
 * functional result of each design is checked against the unscheduled
 * program with the IR interpreter on a small frame.
 *
 * Build and run:  ./build/examples/image_pipeline
 */

#include <cstdio>

#include "baselines/baselines.h"
#include "driver/compiler.h"
#include "dsl/dsl.h"
#include "ir/interpreter.h"
#include "workloads/workloads.h"

using namespace pom;

namespace {

/** Interpret design vs reference on a small frame; returns max |err|. */
double
functionalCheck()
{
    auto w = workloads::makeEdgeDetect(32);
    auto plain_stmts = lower::extractStmts(w->func());
    lower::applyDirectives(plain_stmts);
    auto plain = lower::lowerStmts(w->func(), std::move(plain_stmts));

    auto w2 = workloads::makeEdgeDetect(32);
    auto optimized = baselines::runPom(w2->func());

    auto b1 = ir::makeBuffersFor(*plain.func, 1);
    auto b2 = ir::makeBuffersFor(*optimized.design.func, 1);
    ir::runFunction(*plain.func, b1);
    ir::runFunction(*optimized.design.func, b2);
    double max_err = 0.0;
    for (const auto &[name, buf] : b1) {
        const auto &got = b2.at(name)->data();
        for (size_t i = 0; i < buf->data().size(); ++i) {
            double e = got[i] - buf->data()[i];
            max_err = std::max(max_err, e < 0 ? -e : e);
        }
    }
    return max_err;
}

} // namespace

int
main()
{
    const std::int64_t n = 2048; // frame edge
    const auto device = hls::Device::xc7z020();

    std::printf("=== Sobel edge-detection pipeline (frame %lldx%lld) "
                "===\n\n",
                static_cast<long long>(n), static_cast<long long>(n));

    // Unscheduled.
    auto w_base = workloads::makeEdgeDetect(n);
    auto base = baselines::runUnoptimized(w_base->func());
    std::printf("unscheduled:   %s\n", base.report.str(device).c_str());

    // Hand schedule: pipeline each stage, unroll 8 columns, partition.
    {
        auto w = workloads::makeEdgeDetect(n);
        int idx = 0;
        for (auto *c : w->func().computes()) {
            dsl::Var o("col_o" + std::to_string(idx)),
                in("col_i" + std::to_string(idx));
            c->split(c->iters().back(), 8, o, in);
            c->pipeline(o, 1);
            c->unroll(in, 0);
            ++idx;
        }
        for (auto *p : w->func().placeholders()) {
            std::vector<std::int64_t> factors(p->shape().size(), 1);
            factors.back() = 8;
            w->func().findPlaceholderMut(p->name())->partition(factors,
                                                               "cyclic");
        }
        auto manual = driver::compile(w->func());
        std::printf("hand schedule: %s  (%.1fx)\n",
                    manual.report.str(device).c_str(),
                    manual.report.speedupOver(base.report));
    }

    // autoDSE.
    auto w_auto = workloads::makeEdgeDetect(n);
    auto pom = baselines::runPom(w_auto->func());
    std::printf("auto_DSE:      %s  (%.1fx, %.2fs)\n\n",
                pom.report.str(device).c_str(),
                pom.report.speedupOver(base.report), pom.seconds);

    double err = functionalCheck();
    std::printf("functional check vs reference (32x32 frame): max "
                "|error| = %g %s\n",
                err, err == 0.0 ? "(bit-exact)" : "");
    return err == 0.0 ? 0 : 1;
}
