/**
 * @file
 * The paper's Fig. 16 case study: Jacobi-1d described with the POM DSL.
 *
 * Two computes share the time loop via `after` (Fig. 16 (2)). A user
 * with FPGA expertise could specify primitives directly (Fig. 16 (3));
 * here we use the autoDSE primitive (Fig. 16 (4)) and let the two-stage
 * engine pick the schedule, then print the search log, the chosen
 * design and its report.
 *
 * Build and run:  ./build/examples/stencil_autodse
 */

#include <cstdio>

#include "driver/compiler.h"
#include "dse/dse.h"
#include "dsl/dsl.h"

int
main()
{
    using namespace pom::dsl;

    const std::int64_t n = 1024, steps = 64;
    pom::dsl::Function f("jacobi1d");
    Var t("t", 0, steps), i("i", 1, n - 1), i2("i2", 1, n - 1);
    Placeholder A(f, "A", {n}, ScalarKind::F32);
    Placeholder B(f, "B", {n}, ScalarKind::F32);

    // (1) algorithm: B[i] = (A[i-1] + A[i] + A[i+1]) / 3;  A[i] = B[i]
    Compute s1(f, "s1", {t, i}, (A(i - 1) + A(i) + A(i + 1)) / 3.0,
               B(i));
    Compute s2(f, "s2", {t, i2}, B(i2), A(i2));

    // (2) the time loop is shared: s2 runs after s1 inside each t.
    s2.after(s1, t);

    // (4) let POM search the schedule automatically.
    f.autoDSE();

    pom::dse::DseResult result = pom::dse::autoDSE(f);

    std::printf("---- DSE log ----\n");
    for (const auto &line : result.log)
        std::printf("  %s\n", line.c_str());
    std::printf("\n---- chosen polyhedral AST ----\n%s\n",
                result.design.astRoot->str().c_str());
    std::printf("---- report ----\n%s\n",
                result.report.str(pom::hls::Device::xc7z020()).c_str());
    std::printf("speedup: %.1fx, DSE time: %.2fs, points explored: %d\n",
                result.speedup(), result.dseSeconds,
                result.pointsExplored);
    return 0;
}
